// Package server is the NVMExplorer-Go study service: a long-running HTTP
// API over the characterization engine, the Go stand-in for the paper's
// always-on interactive front end (the Section II-C web dashboard). It
// exposes the sweep/study pipeline so many clients can pose eNVM design
// questions against one warm process — repeated and overlapping studies
// are served from the engine's shared memo cache instead of recomputing.
//
// Endpoints (all under /v1):
//
//	POST /v1/studies                        run a sweep.Config; ?format=json|ndjson|csv|html
//	                                        and ?pareto=metric,metric for frontier selection;
//	                                        ?async=1 queues the study and answers 202+job ID
//	GET  /v1/studies                        list stored studies (requires -store)
//	GET  /v1/studies/{fingerprint}          re-render one stored study, zero engine work
//	GET  /v1/query                          filter/rank/Pareto-select rows across stored
//	                                        studies from the warm query index
//	GET  /v1/jobs                           every async job, submission order
//	GET  /v1/jobs/{id}                      one job: state + completed/total progress
//	GET  /v1/jobs/{id}/result               a done job's study body (?format= as above)
//	DELETE /v1/jobs/{id}                    cancel a queued or running job
//	GET  /v1/cells                          the canonical tentpole cell database
//	GET  /v1/experiments                    the paper-experiment registry
//	GET  /v1/experiments/{id}/dashboard.html  one experiment rendered as an HTML dashboard
//	GET  /v1/stats                          memo-cache, study-store, fabric, job, and query counters
//	GET  /v1/healthz                        liveness/readiness (503 while draining)
//	GET  /v1/openapi.json                   machine-readable API description
//	GET  /v1/version                        protocol + schema versions for the peer handshake
//	GET/PUT /v1/store/points/{addr}         the store wire protocol: point records by content
//	GET/PUT /v1/store/memo                  address, the live memo snapshot, and study records,
//	GET/PUT /v1/store/studies[/{fp}]        all in the store's own CRC-enveloped byte format
//	POST /v1/store/diff                     anti-entropy reconciliation: diff a peer's
//	                                        point-address set against this store's
//	GET  /v1/store/digest                   point count + digest of this store's point-key set
//	POST /v1/shard                          compute a slice of a study's design space (the
//	                                        fabric worker protocol — see internal/fabric)
//
// Responses for a given configuration are byte-identical to the batch CLI
// (`nvmexplorer run -format json|ndjson|csv`): both sides render through
// the same sweep writers, and study output is deterministic at any worker
// count. That determinism is also why study responses carry a strong ETag
// derived from the configuration fingerprint: a client that replays a
// configuration with If-None-Match gets 304 without the study running at
// all. A bounded job semaphore (Options.MaxConcurrentStudies) keeps
// concurrent studies — sync and async alike — from oversubscribing the
// per-study worker pools, and Options.Store plugs the persistent
// point-level study store (internal/store) under every run.
//
// Output format selection is shared across every rendering endpoint
// (sweep.Negotiate): an explicit ?format= always wins (400 bad_format on an
// unknown name), otherwise the Accept header is honored (406 not_acceptable
// when it names only unproducible types). Every non-2xx response uses one
// JSON error envelope with stable codes — see errors.go.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/nvsim"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/viz"
)

// maxConfigBytes bounds a POST /v1/studies request body.
const maxConfigBytes = 1 << 20

// Options configures a Server.
type Options struct {
	// MaxConcurrentStudies bounds how many studies (and dashboard
	// renders) run at once; further requests wait their turn. 0 means
	// GOMAXPROCS.
	MaxConcurrentStudies int
	// StudyWorkers is the per-study worker-pool size applied when a
	// configuration doesn't set its own. 0 divides GOMAXPROCS evenly
	// across MaxConcurrentStudies. Worker count never changes output.
	StudyWorkers int
	// Store, when non-nil, is attached to every study as its per-point
	// result cache, so repeated and overlapping studies replay stored
	// points instead of re-characterizing (see internal/store).
	Store *store.Store
	// JobWorkers sizes the async worker pool. 0 means
	// MaxConcurrentStudies. Running async jobs still count against the
	// study semaphore.
	JobWorkers int
	// JobQueueDepth bounds how many async jobs may wait beyond the ones
	// running; submissions past it answer 503. 0 means 16.
	JobQueueDepth int
	// SyncWait bounds how long a synchronous study (or dashboard) request
	// may wait for a study slot before being shed with 429 + Retry-After —
	// under overload, fast feedback beats a request that blocks until the
	// client gives up. 0 waits as long as the client does.
	SyncWait time.Duration
	// StudyTimeout bounds one synchronous study's execution; a run that
	// exceeds it answers 503. 0 means no limit. Async jobs are unaffected
	// (their budget is the job queue's).
	StudyTimeout time.Duration
	// Workers lists fabric worker base URLs (e.g. "http://w1:8080"). When
	// non-empty the server becomes a coordinator: before a study runs, its
	// cold grid points are consistent-hashed across the live workers (by
	// characterization config), computed remotely via POST /v1/shard, and
	// merged into the store — so the run itself replays from the store and
	// stays byte-identical to a single-process execution. A coordinator
	// without a Store gets an in-memory one (the prefill needs somewhere to
	// land).
	Workers []string
	// FabricClient overrides the HTTP client the fabric pool uses for every
	// worker request (handshakes, shards, anti-entropy). nil uses the pool's
	// default; chaos tests inject fault-wrapped transports here.
	FabricClient *http.Client
	// HedgeAfter launches a second copy of a still-running shard on the
	// next ring owner after this long; the first result wins and the loser
	// is cancelled. 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold, BreakerBackoff, BreakerMaxBackoff, and BreakerSeed
	// tune the per-worker circuit breakers (see internal/fabric). Zero
	// values select the fabric defaults.
	BreakerThreshold  int
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	BreakerSeed       int64
	// ShardAttempts bounds how many assignment rounds a prefill tries
	// (first fan-out plus reshards across surviving workers) before leaving
	// unfilled points to local compute. 0 selects the fabric default.
	ShardAttempts int
	// Rehandshake, when positive, re-probes open worker breakers on a
	// background ticker so revived workers rejoin between prefills.
	Rehandshake time.Duration
	// AntiEntropy, when positive, runs a store reconciliation pass against
	// every live worker on a background ticker (POST /v1/store/diff), so
	// coordinator and worker stores converge after partitions and crashes.
	AntiEntropy time.Duration
}

// Server is the study service. Create with New; it is safe for concurrent
// use by the HTTP stack. Call Close when done to stop the async workers.
type Server struct {
	opts Options
	sem  chan struct{} // bounded job semaphore
	jobs *jobManager
	// idx is the read-optimized query index over the store's studies
	// (GET /v1/query, GET /v1/studies...); nil without a store.
	idx *query.Index
	// fabric is the coordinator's worker pool; nil unless Options.Workers
	// is set.
	fabric *fabric.Pool

	inFlight     atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	points       atomic.Int64 // design points served across all formats
	shed         atomic.Int64 // sync requests bounced with 429 under overload
	shardsServed atomic.Int64 // POST /v1/shard requests answered (worker role)
	draining     atomic.Bool  // set by Drain; flips /v1/healthz to 503
}

// New creates a Server and starts its async worker pool.
func New(opts Options) *Server {
	if opts.MaxConcurrentStudies <= 0 {
		opts.MaxConcurrentStudies = runtime.GOMAXPROCS(0)
	}
	if opts.StudyWorkers <= 0 {
		opts.StudyWorkers = runtime.GOMAXPROCS(0) / opts.MaxConcurrentStudies
		if opts.StudyWorkers < 1 {
			opts.StudyWorkers = 1
		}
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = opts.MaxConcurrentStudies
	}
	if opts.JobQueueDepth <= 0 {
		opts.JobQueueDepth = 16
	}
	if len(opts.Workers) > 0 && opts.Store == nil {
		// A coordinator merges worker-computed points into its store before
		// each run; without a configured one, an in-memory store keeps the
		// fabric functional (just not durable across restarts).
		opts.Store, _ = store.Open("")
	}
	s := &Server{opts: opts, sem: make(chan struct{}, opts.MaxConcurrentStudies)}
	if len(opts.Workers) > 0 {
		s.fabric = fabric.NewPoolOptions(opts.Workers, fabric.Options{
			Client:            opts.FabricClient,
			HedgeAfter:        opts.HedgeAfter,
			BreakerThreshold:  opts.BreakerThreshold,
			BreakerBackoff:    opts.BreakerBackoff,
			BreakerMaxBackoff: opts.BreakerMaxBackoff,
			BreakerSeed:       opts.BreakerSeed,
			ShardAttempts:     opts.ShardAttempts,
			Rehandshake:       opts.Rehandshake,
			AntiEntropy:       opts.AntiEntropy,
		})
		s.fabric.Start(opts.Store)
	}
	if opts.Store != nil {
		s.idx = query.New(opts.Store)
		s.idx.Refresh() // warm the read side before the first request
	}
	s.jobs = newJobManager(s, opts.JobWorkers, opts.JobQueueDepth)
	// Replay the store's job journal: every async job that never reached a
	// terminal state before the last shutdown (graceful or not) is re-adopted
	// and re-queued. Already-stored points replay from the store, so a
	// resumed job recomputes at most the points that were in flight when the
	// process died.
	s.jobs.resume()
	return s
}

// ResumedJobs reports how many journaled jobs this server re-adopted at
// startup.
func (s *Server) ResumedJobs() int64 { return s.jobs.resumed.Load() }

// Close cancels every outstanding async job, stops the worker pool, and
// ends the fabric's background loops. In-flight synchronous requests are
// the HTTP server's to drain.
func (s *Server) Close() {
	s.jobs.close()
	if s.fabric != nil {
		s.fabric.Stop()
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/studies", s.handleStudies)
	mux.HandleFunc("GET /v1/studies", s.handleStudiesList)
	mux.HandleFunc("GET /v1/studies/{fingerprint}", s.handleStudyGet)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/cells", s.handleCells)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/experiments/{id}/dashboard.html", s.handleDashboard)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/openapi.json", s.handleOpenAPI)
	// The store/worker wire protocol (see storeapi.go). GET registrations
	// also answer HEAD, which is the protocol's "has" probe.
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /v1/store/points/{addr}", s.handleStorePointGet)
	mux.HandleFunc("PUT /v1/store/points/{addr}", s.handleStorePointPut)
	mux.HandleFunc("GET /v1/store/memo", s.handleMemoGet)
	mux.HandleFunc("PUT /v1/store/memo", s.handleMemoPut)
	mux.HandleFunc("GET /v1/store/studies", s.handleStoreStudies)
	mux.HandleFunc("GET /v1/store/studies/{fingerprint}", s.handleStoreStudyGet)
	mux.HandleFunc("PUT /v1/store/studies/{fingerprint}", s.handleStoreStudyPut)
	mux.HandleFunc("POST /v1/store/diff", s.handleStoreDiff)
	mux.HandleFunc("GET /v1/store/digest", s.handleStoreDigest)
	mux.HandleFunc("POST /v1/shard", s.handleShard)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	// Everything else gets the API's 404 envelope instead of the mux's
	// plain-text default (method mismatches land here too).
	mux.HandleFunc("/", s.handleNotFound)
	return mux
}

// Drain marks the server as shutting down: /v1/healthz starts answering
// 503 so load balancers stop routing new work, while requests already
// in flight run to completion (http.Server.Shutdown handles the drain).
func (s *Server) Drain() { s.draining.Store(true) }

// handleHealthz reports liveness plus readiness: 200 while serving (with
// status "degraded" once the store has fallen back to memory-only mode —
// still correct, no longer durable), 503 once draining, with the in-flight
// study count either way.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.opts.Store != nil && s.opts.Store.Degraded() {
		state = "degraded"
	}
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":    state,
		"in_flight": s.inFlight.Load(),
	})
}

// acquire claims a job slot, waiting until one frees, the request dies, or
// (when Options.SyncWait is set) the load-shedding deadline passes. shed
// reports the latter; callers answer 429 with Retry-After. Release an
// obtained slot with <-s.sem.
func (s *Server) acquire(r *http.Request) (ok, shed bool) {
	var deadline <-chan time.Time
	if s.opts.SyncWait > 0 {
		t := time.NewTimer(s.opts.SyncWait)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case s.sem <- struct{}{}:
		return true, false
	case <-r.Context().Done():
		return false, false
	case <-deadline:
		s.shed.Add(1)
		return false, true
	}
}

// shedRequest answers a load-shed request: 429 with a Retry-After hint (in
// the header and the envelope), the contract that lets clients and load
// balancers back off instead of piling onto a saturated study semaphore.
func shedRequest(w http.ResponseWriter, wait time.Duration) {
	secs := int(wait / time.Second)
	if secs < 1 {
		secs = 1
	}
	apiErrorRetry(w, http.StatusTooManyRequests, codeSaturated,
		fmt.Errorf("server saturated; retry in %ds", secs), secs)
}

// handleNotFound is the catch-all: unknown paths (and method mismatches the
// mux routes here) answer the API's 404 envelope.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	apiError(w, http.StatusNotFound, codeNotFound,
		fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
}

// studyPareto resolves the ?pareto= query option — a comma-separated
// metric list that overrides the configuration's own pareto block.
func studyPareto(r *http.Request, cfg *sweep.Config) {
	if p := sweep.ParseParetoList(r.URL.Query().Get("pareto")); p != nil {
		cfg.Pareto = p
	}
}

// explorationOverrides carries the request-level ?mode=, ?budget=, and
// ?seed= options. Each value has a Set flag so journal replay can
// distinguish "absent" from an explicit zero, mirroring the pareto
// override's ParetoSet.
type explorationOverrides struct {
	ModeSet   bool
	Mode      string
	BudgetSet bool
	Budget    int
	SeedSet   bool
	Seed      int64
}

// parseExploration reads the exploration override options off a request.
// Only syntax is checked here; semantic validation (unknown mode, budget
// without a pareto block) happens in sweep.Config.Study so the CLI and the
// API reject identically.
func parseExploration(r *http.Request) (explorationOverrides, error) {
	var o explorationOverrides
	q := r.URL.Query()
	if v := q.Get("mode"); v != "" {
		o.ModeSet, o.Mode = true, v
	}
	if v := q.Get("budget"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return o, fmt.Errorf("invalid budget %q: %v", v, err)
		}
		o.BudgetSet, o.Budget = true, n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return o, fmt.Errorf("invalid seed %q: %v", v, err)
		}
		o.SeedSet, o.Seed = true, n
	}
	return o, nil
}

// apply writes the set overrides onto a parsed configuration.
func (o explorationOverrides) apply(cfg *sweep.Config) {
	if o.ModeSet {
		cfg.Mode = o.Mode
	}
	if o.BudgetSet {
		cfg.Budget = o.Budget
	}
	if o.SeedSet {
		cfg.Seed = o.Seed
	}
}

// etagFor derives the strong ETag of a study response: study responses are
// deterministic functions of (configuration fingerprint, format), so the
// hash of that pair identifies the exact bytes without rendering them.
func etagFor(fingerprint, format string) string {
	sum := sha256.Sum256([]byte(fingerprint + "\x00" + format))
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// ifNoneMatchHits reports whether an If-None-Match header value matches the
// ETag (RFC 9110 §13.1.2: a comma-separated list or "*"; weak-compare).
func ifNoneMatchHits(header, etag string) bool {
	for _, v := range strings.Split(header, ",") {
		v = strings.TrimSpace(v)
		v = strings.TrimPrefix(v, "W/")
		if v == etag || v == "*" {
			return true
		}
	}
	return false
}

// builtStudy is one expanded POST /v1/studies request.
type builtStudy struct {
	study  *core.Study
	format sweep.Format
	// raw is the request body as received: async submissions journal it, so
	// a resumed job can rebuild the identical study after a restart.
	raw []byte
	// eff is the effective configuration (request-level overrides applied)
	// re-marshaled as JSON — what a study manifest records so the query
	// index can re-expand the identical study later. nil if marshaling
	// failed (the study still runs; it just isn't recorded).
	eff []byte
	// expl preserves the request's ?mode/?budget/?seed overrides for the
	// async journal, so a resumed job re-applies them on replay.
	expl explorationOverrides
}

// buildStudy expands a request body into a runnable study with the server's
// store attached and the default worker-pool size applied.
func (s *Server) buildStudy(w http.ResponseWriter, r *http.Request) (builtStudy, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxConfigBytes))
	if err != nil {
		apiError(w, http.StatusBadRequest, codeInvalidConfig, err)
		return builtStudy{}, false
	}
	cfg, err := sweep.Parse(bytes.NewReader(raw))
	if err != nil {
		apiError(w, http.StatusBadRequest, codeInvalidConfig, err)
		return builtStudy{}, false
	}
	studyPareto(r, cfg)
	expl, err := parseExploration(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, codeInvalidConfig, err)
		return builtStudy{}, false
	}
	expl.apply(cfg)
	eff, err := json.Marshal(cfg)
	if err != nil {
		eff = nil
	}
	if s.opts.Store != nil {
		cfg.Cache = s.opts.Store
	}
	study, err := cfg.Study()
	if err != nil {
		apiError(w, http.StatusBadRequest, codeInvalidConfig, err)
		return builtStudy{}, false
	}
	format, err := sweep.Negotiate(r.Header.Get("Accept"), r.URL.Query().Get("format"))
	if err != nil {
		formatError(w, err)
		return builtStudy{}, false
	}
	if study.Workers == 0 {
		study.Workers = s.opts.StudyWorkers
	}
	return builtStudy{study: study, format: format, raw: raw, eff: eff, expl: expl}, true
}

// saveManifest records a completed study in the store's manifest set,
// making it addressable by GET /v1/studies/{fingerprint} and the query
// index. A study with failed points is not fully stored, so it is not
// recorded; a manifest write failure degrades queryability, never the
// response.
func (s *Server) saveManifest(fingerprint string, study *core.Study, eff []byte, res *core.Results) {
	if s.opts.Store == nil || eff == nil || fingerprint == "" || len(res.FailedPoints) > 0 {
		return
	}
	specs, err := study.Space()
	if err != nil {
		return
	}
	if err := s.opts.Store.SaveStudy(store.StudyRecord{
		Fingerprint: fingerprint, Name: study.Name, Config: eff, Points: len(specs),
		Exploration: res.Exploration,
	}); err != nil {
		log.Printf("server: saving study manifest %s: %v", fingerprint, err)
	}
}

// handleStudies runs one sweep configuration. JSON and CSV responses are
// rendered after the run completes; NDJSON streams one DesignPoint per
// line, flushed as the worker pool finishes grid points (in deterministic
// declaration order, so the concatenated stream is byte-identical to the
// batch writer's output). ?async=1 queues the study as a job and answers
// 202 immediately; a matching If-None-Match answers 304 without running.
func (s *Server) handleStudies(w http.ResponseWriter, r *http.Request) {
	b, ok := s.buildStudy(w, r)
	if !ok {
		return
	}
	study, format := b.study, b.format
	switch r.URL.Query().Get("async") {
	case "", "0", "false":
	default:
		s.submitAsync(w, r, b)
		return
	}
	// Deterministic responses make request-identity ETags exact: compute it
	// before running so a revalidation never costs a study.
	fp, err := study.Fingerprint()
	if err != nil {
		apiError(w, http.StatusUnprocessableEntity, codeInvalidConfig, err)
		return
	}
	etag := etagFor(fp, string(format))
	if inm := r.Header.Get("If-None-Match"); inm != "" && ifNoneMatchHits(inm, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	ok, shed := s.acquire(r)
	if shed {
		shedRequest(w, time.Second)
		return
	}
	if !ok {
		return // client gone while queued
	}
	defer func() { <-s.sem }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	// A per-request execution budget: a study that outlives it is canceled
	// and answered 503, so one pathological configuration can't pin a slot
	// forever. r.Context() still distinguishes "client gone" (write nothing).
	ctx := r.Context()
	if s.opts.StudyTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.StudyTimeout)
		defer cancel()
	}
	// Coordinator role: compute the study's cold grid points on the worker
	// fleet first, so the run below replays every point from the store —
	// which is what keeps the response byte-identical at any worker count.
	if s.fabric != nil {
		s.fabric.Prefill(ctx, study, b.eff, s.opts.Store, "")
	}
	if format != sweep.FormatNDJSON {
		res, err := study.RunStream(ctx, nil)
		if err != nil {
			s.failed.Add(1)
			switch {
			case r.Context().Err() != nil: // client gone
			case ctx.Err() != nil: // study timeout
				apiError(w, http.StatusServiceUnavailable, codeStudyTimeout,
					fmt.Errorf("study exceeded the %s execution budget", s.opts.StudyTimeout))
			default:
				apiError(w, http.StatusUnprocessableEntity, codeStudyFailed, err)
			}
			return
		}
		s.saveManifest(fp, study, b.eff, res)
		w.Header().Set("ETag", etag)
		w.Header().Set("Content-Type", format.ContentType())
		if err := format.Write(w, res); err == nil {
			s.completed.Add(1)
			s.points.Add(int64(len(res.Metrics)))
		} else {
			s.failed.Add(1)
		}
		return
	}

	// NDJSON: commit to 200 and stream rows as the run's evaluation pass
	// emits grid points (characterization happens up front in the plan
	// pass, so rows arrive after it completes — see core.Study.RunStream).
	// Rows render through a reused sweep.RowEncoder — the same zero-alloc
	// emit path as the batch writer, so the streamed bytes stay identical
	// to it.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("ETag", etag)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var enc sweep.RowEncoder
	res, err := study.RunStream(ctx, func(pt core.PointResult) error {
		for i := range pt.Metrics {
			if err := enc.Encode(w, &pt.Metrics[i], study); err != nil {
				return err
			}
			s.points.Add(1)
		}
		if flusher != nil {
			flusher.Flush()
		}
		return ctx.Err()
	})
	if err == nil {
		// Trailers need the full result set, so they follow the rows — the
		// same failed-points and frontier lines sweep.WriteNDJSON emits in
		// batch mode.
		err = sweep.WriteNDJSONTrailers(w, res)
	}
	if err != nil {
		s.failed.Add(1)
		if r.Context().Err() == nil {
			// Headers are gone; surface the failure as a trailing error row
			// in the same envelope shape as a pre-stream failure.
			_ = json.NewEncoder(w).Encode(errorBody{Error: errorDetail{
				Code: codeStudyFailed, Message: err.Error(),
			}})
		}
		return
	}
	s.saveManifest(fp, study, b.eff, res)
	s.completed.Add(1)
}

// asyncAccepted is the 202 body of an async submission.
type asyncAccepted struct {
	JobID string   `json:"job_id"`
	State JobState `json:"state"`
	URL   string   `json:"url"`
	// Deduplicated reports that an identical configuration was already
	// queued or running, and this submission joined it.
	Deduplicated bool `json:"deduplicated,omitempty"`
}

// submitAsync queues a study as a background job and answers 202 with the
// job's ID — or the ID of an identical in-flight job (singleflight dedup).
// The raw config bytes (plus any request-level Pareto override) are
// journaled write-ahead, so the job survives a crash.
func (s *Server) submitAsync(w http.ResponseWriter, r *http.Request, b builtStudy) {
	if s.draining.Load() {
		apiError(w, http.StatusServiceUnavailable, codeDraining, fmt.Errorf("draining"))
		return
	}
	j, dedup, err := s.jobs.submit(b, sweep.ParseParetoList(r.URL.Query().Get("pareto")))
	if err != nil {
		if errors.Is(err, errQueueFull) {
			apiError(w, http.StatusServiceUnavailable, codeQueueFull, err)
			return
		}
		apiError(w, http.StatusUnprocessableEntity, codeInvalidConfig, err)
		return
	}
	st, _, _ := j.snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(asyncAccepted{
		JobID: j.id, State: st, URL: "/v1/jobs/" + j.id, Deduplicated: dedup,
	})
}

// handleJobs lists every async job in submission order.
func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.jobs.list()
	rows := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		rows = append(rows, j.status())
	}
	writeJSON(w, rows)
}

// handleJob reports one job's state and grid-point progress.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, j.status())
}

// handleJobResult renders a done job's study body. The format defaults to
// the one requested at submission and can be overridden with ?format=; the
// bytes are identical to the sync response and the batch CLI for the same
// configuration, and carry the same ETag.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	st, res, jerr := j.snapshot()
	switch st {
	case JobQueued, JobRunning:
		apiError(w, http.StatusConflict, codeJobNotReady, fmt.Errorf("job %s is %s; no result yet", j.id, st))
		return
	case JobCanceled:
		apiError(w, http.StatusGone, codeJobCanceled, fmt.Errorf("job %s was canceled", j.id))
		return
	case JobFailed:
		apiError(w, http.StatusInternalServerError, codeJobFailed, fmt.Errorf("job %s failed: %v", j.id, jerr))
		return
	}
	// The format requested at submission is the default; an explicit
	// ?format= or an Accept header renegotiates (406 when unsatisfiable).
	format := sweep.Format(j.format)
	if p := r.URL.Query().Get("format"); p != "" || strings.TrimSpace(r.Header.Get("Accept")) != "" {
		var err error
		if format, err = sweep.Negotiate(r.Header.Get("Accept"), p); err != nil {
			formatError(w, err)
			return
		}
	}
	etag := etagFor(j.fingerprint, string(format))
	if inm := r.Header.Get("If-None-Match"); inm != "" && ifNoneMatchHits(inm, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", format.ContentType())
	if err := format.Write(w, res); err == nil {
		s.points.Add(int64(len(res.Metrics)))
	}
}

// handleJobCancel cancels a queued or running job. Terminal jobs are left
// as they are; either way the job's current status is returned.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.cancel()
	// A job still waiting in the queue settles here; a running one settles
	// in its worker when RunStream observes the cancellation.
	if st, _, _ := j.snapshot(); st == JobQueued {
		j.setState(JobCanceled, nil, context.Canceled)
		s.jobs.settle(j)
	}
	writeJSON(w, j.status())
}

// cellRow is one /v1/cells entry in engineering units.
type cellRow struct {
	Name            string      `json:"name"`
	Technology      string      `json:"technology"`
	Flavor          string      `json:"flavor"`
	AreaF2          sweep.Float `json:"area_f2"`
	NodeNM          sweep.Float `json:"node_nm"`
	ReadLatencyNS   sweep.Float `json:"read_latency_ns"`
	WriteLatencyNS  sweep.Float `json:"write_latency_ns"`
	ReadEnergyPJ    sweep.Float `json:"read_energy_pj"`
	WriteEnergyPJ   sweep.Float `json:"write_energy_pj"`
	EnduranceCycles sweep.Float `json:"endurance_cycles"`
	RetentionS      sweep.Float `json:"retention_s"`
	Sense           string      `json:"sense"`
}

func (s *Server) handleCells(w http.ResponseWriter, _ *http.Request) {
	var rows []cellRow
	for _, d := range cell.Canon() {
		rows = append(rows, cellRow{
			Name:            d.Name,
			Technology:      d.Tech.String(),
			Flavor:          d.Flavor.String(),
			AreaF2:          sweep.Float(d.AreaF2),
			NodeNM:          sweep.Float(d.NodeNM),
			ReadLatencyNS:   sweep.Float(d.ReadLatencyNS),
			WriteLatencyNS:  sweep.Float(d.WriteLatencyNS),
			ReadEnergyPJ:    sweep.Float(d.ReadEnergyPJ),
			WriteEnergyPJ:   sweep.Float(d.WriteEnergyPJ),
			EnduranceCycles: sweep.Float(d.EnduranceCycles),
			RetentionS:      sweep.Float(d.RetentionS),
			Sense:           d.Sense.String(),
		})
	}
	writeJSON(w, rows)
}

// experimentRow is one /v1/experiments entry.
type experimentRow struct {
	ID        string `json:"id"`
	Title     string `json:"title"`
	Dashboard string `json:"dashboard"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	var rows []experimentRow
	for _, e := range exp.All() {
		rows = append(rows, experimentRow{
			ID:        e.ID,
			Title:     e.Title,
			Dashboard: "/v1/experiments/" + e.ID + "/dashboard.html",
		})
	}
	writeJSON(w, rows)
}

// handleDashboard runs one registered experiment and renders its tables
// and scatter views as the self-contained HTML dashboard — the live form
// of `nvmviz`. Experiment runs count against the job semaphore like
// studies do.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	e, err := exp.Get(r.PathValue("id"))
	if err != nil {
		apiError(w, http.StatusNotFound, codeNotFound, err)
		return
	}
	ok, shed := s.acquire(r)
	if shed {
		shedRequest(w, time.Second)
		return
	}
	if !ok {
		return
	}
	defer func() { <-s.sem }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	// Experiment generators have no cancellation path, so a render that has
	// started runs to completion even if the client leaves; at least skip
	// the work when the client is already gone by the time a slot frees.
	if r.Context().Err() != nil {
		return
	}
	res, err := e.Run()
	if err != nil {
		s.failed.Add(1)
		apiError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	dash := &viz.Dashboard{
		Title:    fmt.Sprintf("%s — %s", e.ID, e.Title),
		Scatters: res.Scatters,
		Tables:   res.Tables,
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dash.WriteHTML(w); err != nil {
		s.failed.Add(1)
		return
	}
	s.completed.Add(1)
}

// statsSchemaVersion stamps the /v1/stats body. The schema is versioned
// API surface now: block and field names within a schema version are
// stable, and removals only happen across a version bump.
const statsSchemaVersion = "v1"

// Stats is the /v1/stats body.
type Stats struct {
	// SchemaVersion identifies this body's layout; see statsSchemaVersion.
	SchemaVersion string `json:"schema_version"`
	Memo          struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"memo_cache"`
	// Store reports the persistent point store, when one is attached: a
	// hit is a design point served without touching the engine at all.
	Store struct {
		Enabled bool `json:"enabled"`
		// Backend is the store's backend kind ("local", "remote", or
		// "memory"); Target is its location — a directory for local
		// backends, a base URL for remote ones.
		Backend string `json:"backend,omitempty"`
		Target  string `json:"target,omitempty"`
		// Dir is the legacy name for a local backend's directory.
		// Deprecated: read Target (and Backend) instead; kept readable for
		// one release.
		Dir    string `json:"dir,omitempty"`
		Hits   int64  `json:"hits"`
		Misses int64  `json:"misses"`
		// Self-healing telemetry: quarantined corrupt files, memo snapshots
		// discarded at restore, disk operations failed past retries,
		// individual retry attempts, and whether persistent failures demoted
		// the store to memory-only.
		Quarantined  int64 `json:"quarantined"`
		MemoDiscards int64 `json:"memo_discards"`
		IOErrors     int64 `json:"io_errors"`
		Retries      int64 `json:"retries"`
		Degraded     bool  `json:"degraded"`
	} `json:"store"`
	// Fabric reports the distributed-study fabric: the coordinator's view
	// of its worker fleet (workers/live/shards/remote hits & misses/resumed
	// shards) plus this process's worker role (shards served).
	Fabric struct {
		Enabled bool `json:"enabled"`
		Workers int  `json:"workers"`
		Live    int  `json:"live"`
		// Shards counts shard requests fanned out to workers; RemoteHits
		// and RemoteMisses count grid points computed remotely vs. fallen
		// back to local execution; ResumedShards counts shard assignments
		// re-fanned out after a coordinator crash + resume.
		Shards        int64 `json:"shards"`
		RemoteHits    int64 `json:"remote_hits"`
		RemoteMisses  int64 `json:"remote_misses"`
		ResumedShards int64 `json:"resumed_shards"`
		// Resilience telemetry (schema v1 additions): BreakerOpen is the
		// current count of workers with an open or half-open breaker;
		// BreakerTrips/BreakerResets count state transitions; ShardRetries
		// and Resharded count shard requests and points re-assigned to
		// survivors after a failure; Hedges/HedgesWon/HedgesLost count
		// straggler hedging (launched / resolved by the hedge copy /
		// resolved by the primary after hedging); the AntiEntropy trio
		// counts reconciliation passes and the points they moved.
		BreakerOpen       int   `json:"breaker_open"`
		BreakerTrips      int64 `json:"breaker_trips"`
		BreakerResets     int64 `json:"breaker_resets"`
		ShardRetries      int64 `json:"shard_retries"`
		Resharded         int64 `json:"resharded"`
		Hedges            int64 `json:"hedges"`
		HedgesWon         int64 `json:"hedges_won"`
		HedgesLost        int64 `json:"hedges_lost"`
		AntiEntropyRuns   int64 `json:"anti_entropy_runs"`
		AntiEntropyPulled int64 `json:"anti_entropy_pulled"`
		AntiEntropyPushed int64 `json:"anti_entropy_pushed"`
		// ShardsServed counts POST /v1/shard requests this process answered
		// as a worker.
		ShardsServed int64 `json:"shards_served"`
	} `json:"fabric"`
	Jobs struct {
		InFlight      int64 `json:"in_flight"`
		MaxConcurrent int   `json:"max_concurrent"`
		StudyWorkers  int   `json:"study_workers"`
		Completed     int64 `json:"completed"`
		Failed        int64 `json:"failed"`
		PointsServed  int64 `json:"points_served"`
		// Shed counts sync requests bounced with 429 under overload.
		Shed int64 `json:"shed"`
	} `json:"jobs"`
	// Query reports the read-side index over the stored studies, when a
	// store is attached.
	Query struct {
		Enabled    bool  `json:"enabled"`
		Studies    int   `json:"studies"`
		Incomplete int   `json:"incomplete"`
		Rows       int   `json:"rows"`
		Generation int64 `json:"generation"`
		Queries    int64 `json:"queries"`
	} `json:"query"`
	// Exploration reports the adaptive planner and the constraint
	// pre-filter: configs proven infeasible before characterization,
	// adaptive studies run, and their evaluated/pruned point totals.
	Exploration core.ExplorationStats `json:"exploration"`
	// Async reports the background job subsystem.
	Async struct {
		Workers      int   `json:"workers"`
		QueueDepth   int   `json:"queue_depth"`
		Submitted    int64 `json:"submitted"`
		Deduplicated int64 `json:"deduplicated"`
		// Resumed counts journaled jobs re-adopted at startup.
		Resumed  int64 `json:"resumed"`
		Active   int64 `json:"active"`
		Finished int64 `json:"finished"`
	} `json:"async"`
}

// Snapshot returns the current counters (also served at /v1/stats).
func (s *Server) Snapshot() Stats {
	var st Stats
	st.SchemaVersion = statsSchemaVersion
	st.Memo.Hits, st.Memo.Misses = nvsim.MemoStats()
	if s.opts.Store != nil {
		st.Store.Enabled = true
		b := s.opts.Store.Backend()
		st.Store.Backend = b.Kind()
		st.Store.Target = b.Target()
		st.Store.Dir = s.opts.Store.Dir() // deprecated alias of Target
		st.Store.Hits, st.Store.Misses = s.opts.Store.Stats()
		h := s.opts.Store.Health()
		st.Store.Quarantined = h.Quarantined
		st.Store.MemoDiscards = h.MemoDiscards
		st.Store.IOErrors = h.IOErrors
		st.Store.Retries = h.Retries
		st.Store.Degraded = h.Degraded
	}
	if s.fabric != nil {
		f := s.fabric.Snapshot()
		st.Fabric.Enabled = true
		st.Fabric.Workers = f.Workers
		st.Fabric.Live = f.Live
		st.Fabric.Shards = f.Shards
		st.Fabric.RemoteHits = f.RemoteHits
		st.Fabric.RemoteMisses = f.RemoteMisses
		st.Fabric.ResumedShards = f.ResumedShards
		st.Fabric.BreakerOpen = f.BreakerOpen
		st.Fabric.BreakerTrips = f.BreakerTrips
		st.Fabric.BreakerResets = f.BreakerResets
		st.Fabric.ShardRetries = f.ShardRetries
		st.Fabric.Resharded = f.Resharded
		st.Fabric.Hedges = f.Hedges
		st.Fabric.HedgesWon = f.HedgesWon
		st.Fabric.HedgesLost = f.HedgesLost
		st.Fabric.AntiEntropyRuns = f.AntiEntropyRuns
		st.Fabric.AntiEntropyPulled = f.AntiEntropyPulled
		st.Fabric.AntiEntropyPushed = f.AntiEntropyPushed
	}
	st.Fabric.ShardsServed = s.shardsServed.Load()
	st.Jobs.InFlight = s.inFlight.Load()
	st.Jobs.MaxConcurrent = s.opts.MaxConcurrentStudies
	st.Jobs.StudyWorkers = s.opts.StudyWorkers
	st.Jobs.Completed = s.completed.Load()
	st.Jobs.Failed = s.failed.Load()
	st.Jobs.PointsServed = s.points.Load()
	st.Jobs.Shed = s.shed.Load()
	if s.idx != nil {
		q := s.idx.Stats()
		st.Query.Enabled = true
		st.Query.Studies = q.Studies
		st.Query.Incomplete = q.Incomplete
		st.Query.Rows = q.Rows
		st.Query.Generation = q.Generation
		st.Query.Queries = q.Queries
	}
	st.Exploration = core.ReadExplorationStats()
	st.Async.Workers = s.opts.JobWorkers
	st.Async.QueueDepth = s.opts.JobQueueDepth
	st.Async.Submitted = s.jobs.submitted.Load()
	st.Async.Deduplicated = s.jobs.deduplicated.Load()
	st.Async.Resumed = s.jobs.resumed.Load()
	st.Async.Active, st.Async.Finished = s.jobs.counts()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Snapshot())
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `NVMExplorer-Go study service
  POST /v1/studies                          run a sweep.Config (?format=json|ndjson|csv|html,
                                            ?pareto=metric,metric for frontier selection,
                                            ?mode=adaptive&budget=N&seed=S for Pareto-guided
                                            exploration under a point budget,
                                            ?async=1 to queue a job; ETag/If-None-Match honored)
  GET  /v1/studies                          list stored studies (requires -store)
  GET  /v1/studies/{fingerprint}            re-render one stored study, zero engine work
  GET  /v1/query                            filter/rank/Pareto-select rows across stored studies
                                            (study=, cell=, technology=, pattern=, target=,
                                            capacity=, min_<metric>=, max_<metric>=, sort=,
                                            order=, top=, frontier=; ?format= as above)
  GET  /v1/jobs                             every async job, submission order
  GET  /v1/jobs/{id}                        one job: state + completed/total progress
  GET  /v1/jobs/{id}/result                 a done job's study body (?format= as above)
  DELETE /v1/jobs/{id}                      cancel a queued or running job
  GET  /v1/cells                            canonical tentpole cell database
  GET  /v1/experiments                      paper-experiment registry
  GET  /v1/experiments/{id}/dashboard.html  live HTML dashboard for one experiment
  GET  /v1/stats                            memo-cache, study-store, fabric, job, and query counters
  GET  /v1/healthz                          liveness/readiness (503 while draining)
  GET  /v1/openapi.json                     machine-readable API description
  GET  /v1/version                          protocol + schema versions (peer handshake)
  GET  /v1/store/points/{addr}              one point record by content address (PUT to store)
  GET  /v1/store/memo                       live engine memo snapshot (PUT merges one in)
  GET  /v1/store/studies[/{fp}]             stored study records (PUT /{fp} to store)
  POST /v1/store/diff                       anti-entropy: diff a peer's point-address set against ours
  GET  /v1/store/digest                     point count + SHA-256 digest of the store's point-key set
  POST /v1/shard                            compute a slice of a study's design space (fabric worker)
`)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

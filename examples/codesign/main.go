// Co-design studies (paper Section V): two what-ifs that NVMExplorer makes
// cheap to ask.
//
//  1. Device-level: do back-gated FeFETs (10ns writes, 1e12 endurance)
//     unlock graph processing where prior FeFETs fail? (Section V-A)
//
//  2. Architecture-level: does a write buffer that masks write latency or
//     coalesces write traffic make slow-writing eNVMs viable for
//     write-heavy workloads? (Section V-D)
//
//     go run ./examples/codesign
package main

import (
	"fmt"
	"log"

	nvmexplorer "repro"
	"repro/internal/cache"
	"repro/internal/graph"
)

func main() {
	// --- V-A: back-gated FeFETs on graph traffic --------------------------
	fb, _, err := graph.SocialGraphs()
	if err != nil {
		log.Fatal(err)
	}
	_, st, err := graph.BFS(fb, 0)
	if err != nil {
		log.Fatal(err)
	}
	bfs, err := graph.Graphicionado().Traffic("Facebook-BFS", fb, st)
	if err != nil {
		log.Fatal(err)
	}
	// Stress the write path too: PageRank writes per edge.
	_, prst, err := graph.PageRank(fb, 0.85, 1e-4, 3)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := graph.Graphicionado().Traffic("Facebook-PageRank", fb, prst)
	if err != nil {
		log.Fatal(err)
	}

	study := nvmexplorer.NewStudy("back-gated FeFET co-design (8MB)").
		AddTentpole(nvmexplorer.SRAM, nvmexplorer.Reference).
		AddTentpole(nvmexplorer.FeFET, nvmexplorer.Optimistic).
		AddTentpole(nvmexplorer.FeFET, nvmexplorer.Pessimistic).
		AddTentpole(nvmexplorer.BGFeFET, nvmexplorer.Reference).
		AddCapacity(8<<20).
		AddTarget(nvmexplorer.OptReadEDP).
		AddPattern(bfs, pr)
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.MetricsTable().String())
	fmt.Println("back-gated FeFETs close the write-latency gap to SRAM that")
	fmt.Println("prior FeFETs cannot, at a slight read-energy/density cost.")

	// --- V-D: write buffering on the write-heaviest SPEC benchmark --------
	var lbm nvmexplorer.TrafficPattern
	for _, p := range cache.SPECTraffic() {
		if p.Name == "SPEC lbm" {
			lbm = p
		}
	}
	fefet, err := nvmexplorer.Tentpole(nvmexplorer.FeFET, nvmexplorer.Optimistic)
	if err != nil {
		log.Fatal(err)
	}
	arr, err := nvmexplorer.Characterize(nvmexplorer.ArrayConfig{
		Cell: fefet, CapacityBytes: cache.StudyLLCBytes, Target: nvmexplorer.OptReadEDP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFeFET LLC on SPEC lbm under write-buffer configurations:")
	cases := []struct {
		name string
		opts nvmexplorer.EvalOptions
	}{
		{"baseline", nvmexplorer.EvalOptions{}},
		{"mask write latency", nvmexplorer.EvalOptions{WriteBuffer: &nvmexplorer.WriteBufferConfig{
			MaskLatency: true, BufferLatencyNS: 2}}},
		{"coalesce 50% of writes", nvmexplorer.EvalOptions{WriteBuffer: &nvmexplorer.WriteBufferConfig{
			TrafficReduction: 0.5}}},
	}
	for _, c := range cases {
		m, err := nvmexplorer.Evaluate(arr, lbm, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "infeasible"
		if m.MemoryTimePerSec <= 1 {
			verdict = "feasible"
		}
		fmt.Printf("  %-24s pole %6.2f s/s  power %7.2f mW  lifetime %8.3g y  -> %s\n",
			c.name, m.MemoryTimePerSec, m.TotalPowerMW, m.LifetimeYears, verdict)
	}

	// How much coalescing can a real buffer deliver? Measure it: streaming
	// workloads (lbm) coalesce almost nothing — they need the hypothetical
	// reductions the paper sweeps — while cache-resident ones (exchange2)
	// coalesce for free.
	fmt.Println()
	for _, name := range []string{"lbm", "exchange2"} {
		for _, p := range cache.Profiles() {
			if p.Name != name {
				continue
			}
			red, err := cache.MeasureReduction(p, 8192, 300000, 7)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("measured coalescing of an 8192-line write buffer on %-10s %.0f%%\n",
				name+":", red*100)
		}
	}
}

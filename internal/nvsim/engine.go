package nvsim

import (
	"fmt"

	"repro/internal/units"
)

// This file is the shared characterization engine. The circuit model is
// completely independent of the optimization target — the target only
// decides which already-scored candidate wins — so the engine scores the
// organization space exactly once per (cell, capacity, word width,
// constraints) and answers any number of targets with O(n) min-selections
// over the shared candidate set. Characterize and CharacterizeAll in
// array.go are thin wrappers; Study.Run batches all of a study's targets
// through CharacterizeTargets; and the memo cache (memo.go) reuses the
// candidate sets across repeated studies.

// evaluateCandidates scores every organization for an already-normalized
// configuration and returns the admissible ones in enumeration order, with
// Result.Target left at its zero value (the caller stamps the target it
// selects for). This is the single expensive step of characterization; its
// output is what the memo cache stores.
func evaluateCandidates(cfg Config) ([]Result, error) {
	orgs := enumerate(cfg.CapacityBytes*8, cfg.Cell.BitsPerCell, cfg.WordBits)
	if len(orgs) == 0 {
		return nil, fmt.Errorf("nvsim: no feasible organization for %s at %s",
			cfg.Cell.Name, units.Bytes(cfg.CapacityBytes))
	}
	node := nodeAt(cfg.Cell.NodeNM)
	results := make([]Result, 0, len(orgs))
	var m model
	m.initCell(cfg.Cell, node, cfg.WordBits, &defaultCal)
	for _, org := range orgs {
		m.setOrg(org)
		r := Result{
			Cell:           cfg.Cell,
			CapacityBytes:  cfg.CapacityBytes,
			WordBits:       cfg.WordBits,
			Org:            org,
			ReadLatencyNS:  m.readLatencyNS(),
			WriteLatencyNS: m.writeLatencyNS(),
			ReadEnergyPJ:   m.readEnergyPJ(),
			WriteEnergyPJ:  m.writeEnergyPJ(),
			LeakagePowerMW: m.leakagePowerMW(),
			AreaMM2:        m.totalMM2,
			AreaEfficiency: m.areaEfficiency(),
		}
		if cfg.admissible(r) {
			results = append(results, r)
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("nvsim: constraints exclude every organization for %s at %s",
			cfg.Cell.Name, units.Bytes(cfg.CapacityBytes))
	}
	return results, nil
}

// selectBest returns the candidate minimizing the target's figure of merit.
// Ties keep the earliest candidate in enumeration order, matching what a
// stable sort followed by taking element zero would select.
func selectBest(cands []Result, t OptTarget) Result {
	best := cands[0]
	bestV := best.metric(t)
	for i := 1; i < len(cands); i++ {
		if v := cands[i].metric(t); v < bestV {
			bestV = v
			best = cands[i]
		}
	}
	best.Target = t
	return best
}

// CharacterizeTargets characterizes one configuration under many
// optimization targets at once: the organization space is enumerated and
// scored a single time (cfg.Target is ignored), then each target picks its
// winner with an O(n) scan. results and errs are parallel to targets;
// errs[i] is non-nil when that slot failed (a configuration-level error is
// replicated into every slot, an invalid target fails only its own).
func CharacterizeTargets(cfg Config, targets []OptTarget) (results []Result, errs []error) {
	results = make([]Result, len(targets))
	errs = make([]error, len(targets))
	cfg.Target = 0 // selection is per-target; normalize only vets the rest
	if err := cfg.normalize(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return results, errs
	}
	cands, candErr := memoizedCandidates(cfg)
	for i, t := range targets {
		if t < 0 || t >= numOptTargets {
			errs[i] = fmt.Errorf("nvsim: invalid optimization target %d", int(t))
			continue
		}
		if candErr != nil {
			errs[i] = candErr
			continue
		}
		results[i] = selectBest(cands, t)
	}
	return results, errs
}

package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
)

// Run executes a configuration end to end.
func Run(cfg *Config) (*core.Results, error) {
	return RunContext(context.Background(), cfg, nil)
}

// RunContext is the context-aware, streaming form of Run: completed grid
// points are handed to emit in declaration order as the worker pool
// produces them (see core.Study.RunStream). emit may be nil.
func RunContext(ctx context.Context, cfg *Config, emit func(core.PointResult) error) (*core.Results, error) {
	study, err := cfg.Study()
	if err != nil {
		return nil, err
	}
	return study.RunStream(ctx, emit)
}

// RunFile loads a JSON configuration file and executes it.
func RunFile(path string) (*core.Results, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	defer f.Close()
	cfg, err := Parse(f)
	if err != nil {
		return nil, err
	}
	return Run(cfg)
}

// WriteCSVs writes one combined CSV per technology into dir, matching the
// artifact's output/results/[eNVM]_1BPC-combined.csv convention, and
// returns the file paths written.
func WriteCSVs(res *core.Results, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if err := res.EnsureFrontier(); err != nil {
		return nil, err
	}
	perTech, order := techTables(res)
	var paths []string
	for _, techName := range order {
		bpc := "1BPC"
		if strings.Contains(res.Study.Name, "mlc") {
			bpc = "combinedBPC"
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_%s-combined.csv", techName, bpc))
		f, err := os.Create(path)
		if err != nil {
			return paths, fmt.Errorf("sweep: %w", err)
		}
		if err := perTech[techName].WriteCSV(f); err != nil {
			f.Close()
			return paths, fmt.Errorf("sweep: writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

package exp

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/nvsim"
	"repro/internal/viz"
)

func init() {
	register(Experiment{ID: "fig3", Title: "Fig 3: 4MB arrays under various optimization targets", Run: fig3})
	register(Experiment{ID: "fig4", Title: "Fig 4: tentpole STT vs published 1MB array (validation)", Run: fig4})
	register(Experiment{ID: "fig5", Title: "Fig 5: 2MB arrays provisioned to replace NVDLA's SRAM", Run: fig5})
	register(Experiment{ID: "fig10", Title: "Fig 10: 16MB LLC array characteristics in isolation", Run: fig10})
	register(Experiment{ID: "fig12", Title: "Fig 12: area efficiency vs latency across organizations", Run: fig12})
}

// arrayRows characterizes a cell set at one capacity across targets and
// tabulates the array-level views the paper scatters.
func arrayRows(title string, cells []cell.Definition, capBytes int64,
	targets []nvsim.OptTarget) (*Result, error) {
	t := viz.NewTable(title,
		"Cell", "Target", "ReadNS", "WriteNS", "ReadE/b[pJ]", "WriteE/b[pJ]",
		"LeakMW", "AreaMM2", "Mb/mm2", "AreaEff")
	readSc := &viz.Scatter{Title: title + " (read)", XLabel: "read latency (ns)",
		YLabel: "read energy per bit (pJ)", LogX: true, LogY: true}
	writeSc := &viz.Scatter{Title: title + " (write)", XLabel: "write latency (ns)",
		YLabel: "write energy per bit (pJ)", LogX: true, LogY: true}
	for _, d := range cells {
		rs, errs := nvsim.CharacterizeTargets(nvsim.Config{
			Cell: d, CapacityBytes: capBytes}, targets)
		for i, target := range targets {
			if errs[i] != nil {
				return nil, fmt.Errorf("exp: %s: %w", d.Name, errs[i])
			}
			r := rs[i]
			t.MustAddRow(d.Name, target.String(), r.ReadLatencyNS, r.WriteLatencyNS,
				r.ReadEnergyPerBitPJ(), r.WriteEnergyPerBitPJ(), r.LeakagePowerMW,
				r.AreaMM2, r.DensityMbPerMM2(), r.AreaEfficiency)
			readSc.Add(d.Name, viz.Point{X: r.ReadLatencyNS, Y: r.ReadEnergyPerBitPJ(),
				Label: target.String()})
			writeSc.Add(d.Name, viz.Point{X: r.WriteLatencyNS, Y: r.WriteEnergyPerBitPJ(),
				Label: target.String()})
		}
	}
	return &Result{Tables: []*viz.Table{t}, Scatters: []*viz.Scatter{readSc, writeSc}}, nil
}

// fig3: 4MB iso-capacity arrays, optimistic/pessimistic/reference cells per
// technology, across optimization targets.
func fig3() (*Result, error) {
	return arrayRows("Fig 3: 4MB arrays across optimization targets",
		cell.CaseStudyCells(), 4<<20,
		[]nvsim.OptTarget{nvsim.OptReadLatency, nvsim.OptReadEDP, nvsim.OptReadEnergy,
			nvsim.OptWriteEDP, nvsim.OptArea, nvsim.OptLeakage})
}

// fig4: the Section III-C validation exercise — optimistic and pessimistic
// STT arrays against the published 1MB macro.
func fig4() (*Result, error) {
	target := cell.ValidationTargets()[0]
	t := viz.NewTable("Fig 4: tentpole STT vs published 1MB STT macro",
		"Design", "ReadNS", "ReadE[pJ]", "AreaMM2", "Source")
	for _, f := range []cell.Flavor{cell.Optimistic, cell.Pessimistic} {
		d := cell.Normalize(cell.MustTentpole(cell.STT, f), target.NodeNM)
		r, err := nvsim.Characterize(nvsim.Config{
			Cell: d, CapacityBytes: target.CapacityBytes, Target: nvsim.OptReadEDP})
		if err != nil {
			return nil, err
		}
		t.MustAddRow(d.Name, r.ReadLatencyNS, r.ReadEnergyPJ, r.AreaMM2, "NVMExplorer-Go")
	}
	t.MustAddRow(target.ID, target.ReadLatencyNS, target.ReadEnergyPJ, target.AreaMM2,
		"published macro")
	return table(t), nil
}

// fig5: 2MB arrays for the NVDLA buffer replacement, ReadEDP-optimized.
func fig5() (*Result, error) {
	return arrayRows("Fig 5: 2MB arrays (NVDLA buffer)", cell.CaseStudyCells(),
		2<<20, []nvsim.OptTarget{nvsim.OptReadEDP})
}

// fig10: 16MB arrays for the LLC study, read- and write-EDP optimized.
func fig10() (*Result, error) {
	return arrayRows("Fig 10: 16MB LLC arrays", cell.CaseStudyCells(),
		16<<20, []nvsim.OptTarget{nvsim.OptReadEDP, nvsim.OptWriteEDP})
}

// fig12: the area-efficiency observation of Section V-B — across every
// internal organization of an 8MB array, lower area efficiency correlates
// with lower read latency. The table reports decile summaries; the scatter
// carries every organization.
func fig12() (*Result, error) {
	sc := &viz.Scatter{Title: "Fig 12: area efficiency vs read latency (8MB)",
		XLabel: "area efficiency", YLabel: "read latency (ns)", LogY: true}
	t := viz.NewTable("Fig 12: organization deciles by read latency",
		"Cell", "Decile", "MeanAreaEff", "MeanReadNS")
	for _, d := range []cell.Definition{
		cell.MustTentpole(cell.STT, cell.Optimistic),
		cell.MustTentpole(cell.PCM, cell.Optimistic),
		cell.MustTentpole(cell.FeFET, cell.Optimistic),
	} {
		all, err := nvsim.CharacterizeAll(nvsim.Config{
			Cell: d, CapacityBytes: 8 << 20, Target: nvsim.OptReadLatency})
		if err != nil {
			return nil, err
		}
		for _, r := range all {
			sc.Add(d.Name, viz.Point{X: r.AreaEfficiency, Y: r.ReadLatencyNS,
				Label: r.Org.String()})
		}
		n := len(all) / 10
		if n == 0 {
			n = 1
		}
		decile := func(rs []nvsim.Result, name string) {
			eff, lat := 0.0, 0.0
			for _, r := range rs {
				eff += r.AreaEfficiency
				lat += r.ReadLatencyNS
			}
			t.MustAddRow(d.Name, name, eff/float64(len(rs)), lat/float64(len(rs)))
		}
		decile(all[:n], "fastest 10%")
		decile(all[len(all)-n:], "slowest 10%")
	}
	return &Result{Tables: []*viz.Table{t}, Scatters: []*viz.Scatter{sc}}, nil
}

package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/nvsim"
)

func TestExportImportPointRoundTrip(t *testing.T) {
	nvsim.ResetMemo()
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runPoints(t, testStudy(), src)

	key := firstKey(t)
	addrHex := Addr(key)
	if !src.HasPoint(addrHex) {
		t.Fatal("populated store denies holding its own point")
	}
	data, ok := src.ExportPoint(addrHex)
	if !ok {
		t.Fatal("populated store cannot export its own point")
	}

	// The exported bytes carry the record's identity: a fresh store
	// importing them derives the same canonical key and serves the point.
	dst, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if dst.HasPoint(addrHex) {
		t.Fatal("empty store claims the point")
	}
	gotKey, err := dst.ImportPoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Fatalf("imported key %q, want %q", gotKey, key)
	}
	want, _ := src.Get(key)
	got, ok := dst.Get(key)
	if !ok {
		t.Fatal("imported point not readable")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("imported point differs from the source")
	}

	if _, ok := dst.ExportPoint("no-such-address"); ok {
		t.Fatal("exported a point that does not exist")
	}
}

func TestImportPointRejectsBadRecords(t *testing.T) {
	st, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ImportPoint([]byte("not an envelope")); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("garbage import: err = %v, want ErrCorruptRecord", err)
	}

	// A valid envelope stamped with an unknown schema is a different
	// refusal: the HTTP layer maps it to version_mismatch, not corruption.
	var payload bytes.Buffer
	gob.NewEncoder(&payload).Encode(struct{ X int }{1})
	var out bytes.Buffer
	env := envelope{Version: "nvmx-point/v999", Sum: crc32.ChecksumIEEE(payload.Bytes()), Payload: payload.Bytes()}
	if err := gob.NewEncoder(&out).Encode(&env); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ImportPoint(out.Bytes()); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("unknown-version import: err = %v, want ErrUnknownVersion", err)
	}
	if st.Len() != 0 {
		t.Fatal("a rejected import still stored something")
	}
}

func TestExportImportStudyRoundTrip(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := StudyRecord{
		Fingerprint: "fp-roundtrip",
		Name:        "export-test",
		Config:      []byte(`{"cells":["STT"]}`),
		Points:      4,
	}
	if err := src.SaveStudy(rec); err != nil {
		t.Fatal(err)
	}
	data, ok := src.ExportStudy("fp-roundtrip")
	if !ok {
		t.Fatal("saved study cannot be exported")
	}
	if _, ok := src.ExportStudy("fp-missing"); ok {
		t.Fatal("exported a study that does not exist")
	}

	dst, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := dst.ImportStudy(data)
	if err != nil {
		t.Fatal(err)
	}
	if fp != "fp-roundtrip" {
		t.Fatalf("imported fingerprint %q, want fp-roundtrip", fp)
	}
	got, ok := dst.LoadStudy("fp-roundtrip")
	if !ok {
		t.Fatal("imported study not loadable")
	}
	if got.Name != rec.Name || got.Points != rec.Points || !bytes.Equal(got.Config, rec.Config) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
	if fps := dst.StudyFingerprints(); len(fps) != 1 || fps[0] != "fp-roundtrip" {
		t.Fatalf("StudyFingerprints = %v, want [fp-roundtrip]", fps)
	}
}

func TestImportStudyRejectsBadRecords(t *testing.T) {
	st, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ImportStudy([]byte("torn manifest")); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("garbage import: err = %v, want ErrCorruptRecord", err)
	}

	var payload bytes.Buffer
	gob.NewEncoder(&payload).Encode(StudyRecord{Fingerprint: "fp"})
	var out bytes.Buffer
	env := envelope{Version: "nvmx-studyrec/v999", Sum: crc32.ChecksumIEEE(payload.Bytes()), Payload: payload.Bytes()}
	if err := gob.NewEncoder(&out).Encode(&env); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ImportStudy(out.Bytes()); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("unknown-version import: err = %v, want ErrUnknownVersion", err)
	}
	if fps := st.StudyFingerprints(); len(fps) != 0 {
		t.Fatalf("a rejected import still saved a manifest: %v", fps)
	}
}

package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/cell"
	"repro/internal/eval"
	"repro/internal/nvsim"
	"repro/internal/traffic"
)

// axisStudy builds a grid whose points share characterizations: 2 cells ×
// 1 capacity × 3 write buffers × 2 fault modes = 12 points over exactly 2
// unique (cell, capacity, word-width) configs.
func axisStudy(workers int) *Study {
	s := NewStudy("plan-dedup")
	s.AddTentpole(cell.STT, cell.Optimistic)
	s.AddTentpole(cell.FeFET, cell.Optimistic)
	s.AddCapacity(1 << 20)
	s.AddTarget(nvsim.OptReadEDP, nvsim.OptArea)
	s.AddPattern(traffic.GenericSweep(1, 10, 0.01, 0.1, 2)...)
	s.WriteBuffers = []*eval.WriteBufferConfig{
		nil,
		{MaskLatency: true, BufferLatencyNS: 1},
		{TrafficReduction: 0.5},
	}
	s.Faults = []*eval.FaultConfig{nil, {Mode: eval.FaultRaw, Seed: 3, ProbeBytes: 256}}
	s.Workers = workers
	return s
}

// TestPlanDedupesUniqueConfigs is the planner's headline property: a grid
// whose points differ only in evaluation axes characterizes each unique
// config exactly once per run — one memo lookup per config, not per point.
func TestPlanDedupesUniqueConfigs(t *testing.T) {
	nvsim.ResetMemo()
	res, err := axisStudy(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := nvsim.MemoStats()
	if misses != 2 || hits != 0 {
		t.Errorf("cold run: memo hits=%d misses=%d, want 0/2 (one per unique config, 12 grid points)",
			hits, misses)
	}
	specs, err := axisStudy(1).Space()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 12 {
		t.Fatalf("grid = %d points, want 12", len(specs))
	}
	if want := len(specs) * 2 /* targets */ * 4; /* patterns */ len(res.Metrics) != want {
		t.Fatalf("metrics = %d, want %d", len(res.Metrics), want)
	}
}

// TestPlannerMatchesAcrossWorkers pins planner output equality between the
// sequential and parallel plan passes, fault axes included (per-point
// seeds must land on the same points regardless of worker count).
func TestPlannerMatchesAcrossWorkers(t *testing.T) {
	seq, err := axisStudy(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	par, err := axisStudy(8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Arrays, par.Arrays) ||
		!reflect.DeepEqual(seq.Metrics, par.Metrics) ||
		!reflect.DeepEqual(seq.Skipped, par.Skipped) {
		t.Fatal("Workers=8 results diverge from Workers=1")
	}
}

// countingCache wraps an in-memory PointCache with Get/Put counters.
type countingCache struct {
	mu         sync.Mutex
	m          map[string]CachedPoint
	gets, puts int
}

func (c *countingCache) Get(key string) (CachedPoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	cp, ok := c.m[key]
	return cp, ok
}

func (c *countingCache) Put(key string, pt CachedPoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = pt
}

// TestPlanCacheInterplay checks the plan pass against the point cache: a
// cold run probes and fills every point; a warm run probes every point,
// characterizes nothing, and stores nothing new.
func TestPlanCacheInterplay(t *testing.T) {
	cache := &countingCache{m: map[string]CachedPoint{}}
	s := axisStudy(4)
	s.Cache = cache
	cold, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cache.gets != 12 || cache.puts != 12 {
		t.Fatalf("cold run: gets=%d puts=%d, want 12/12", cache.gets, cache.puts)
	}

	nvsim.ResetMemo()
	s2 := axisStudy(4)
	s2.Cache = cache
	warm, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cache.gets != 24 || cache.puts != 12 {
		t.Fatalf("warm run: gets=%d puts=%d, want 24/12 (no new stores)", cache.gets, cache.puts)
	}
	if hits, misses := nvsim.MemoStats(); hits != 0 || misses != 0 {
		t.Fatalf("warm run characterized: memo hits=%d misses=%d, want 0/0", hits, misses)
	}
	if !reflect.DeepEqual(cold.Metrics, warm.Metrics) || !reflect.DeepEqual(cold.Arrays, warm.Arrays) {
		t.Fatal("warm replay diverges from cold computation")
	}
}

// TestPlanSharedSkips checks that a config excluded by constraints skips
// identically on every grid point sharing it, in declaration order — and
// that the budget exclusion never reaches the engine: the 146F² SRAM
// reference cell at 4 MB is over 1.2 mm² of bare cell matrix, so the cheap
// constraint pre-filter proves it infeasible under the 0.9 mm² budget and
// only the STT config is characterized.
func TestPlanSharedSkips(t *testing.T) {
	nvsim.ResetMemo()
	ResetExplorationStats()
	s := NewStudy("plan-skips")
	s.AddTentpole(cell.SRAM, cell.Reference) // 146F² SRAM: excluded by the tight area budget
	s.AddTentpole(cell.STT, cell.Optimistic)
	s.AddCapacity(4 << 20)
	s.AddPattern(traffic.Pattern{Name: "p", ReadsPerSec: 1e6})
	s.WriteBuffers = []*eval.WriteBufferConfig{nil, {TrafficReduction: 0.25}}
	s.MaxAreaMM2 = 0.9
	s.Workers = 2
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skipped) != 2 {
		t.Fatalf("skipped = %v, want the SRAM config skipped once per sharing point", res.Skipped)
	}
	if res.Skipped[0] != res.Skipped[1] {
		t.Fatalf("points sharing a config must report identical skip lines: %v", res.Skipped)
	}
	if got := ReadExplorationStats().PrefilteredConfigs; got != 1 {
		t.Errorf("prefiltered configs = %d, want 1 (the SRAM config)", got)
	}
	if _, misses := nvsim.MemoStats(); misses != 1 {
		t.Errorf("memo misses = %d, want 1: the pre-filtered SRAM config must not reach the engine", misses)
	}
}

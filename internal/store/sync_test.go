package store

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
)

func TestPointAddrsAndDigestAreOrderIndependent(t *testing.T) {
	a, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	a.Put("k1", core.CachedPoint{Skipped: []string{"1"}})
	a.Put("k2", core.CachedPoint{Skipped: []string{"2"}})
	b.Put("k2", core.CachedPoint{Skipped: []string{"2"}})
	b.Put("k1", core.CachedPoint{Skipped: []string{"1"}})

	addrs := a.PointAddrs()
	if !sort.StringsAreSorted(addrs) {
		t.Fatalf("PointAddrs not sorted: %v", addrs)
	}
	if !reflect.DeepEqual(addrs, []string{addr("k1"), addr("k2")}) && !reflect.DeepEqual(addrs, []string{addr("k2"), addr("k1")}) {
		t.Fatalf("PointAddrs = %v, want the addresses of k1 and k2", addrs)
	}

	na, da := a.Digest()
	nb, db := b.Digest()
	if na != 2 || nb != 2 || da != db {
		t.Fatalf("equal point sets digest differently: (%d, %s) vs (%d, %s)", na, da, nb, db)
	}
	b.Put("k3", core.CachedPoint{Skipped: []string{"3"}})
	if _, db2 := b.Digest(); db2 == da {
		t.Fatal("digest unchanged by a new point")
	}
}

func TestPointAddrsCoverDurableRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Put("durable", core.CachedPoint{Skipped: []string{"d"}})

	// A fresh store over the same directory has an empty memory mirror:
	// the address must come from the backend walk.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.PointAddrs(); !reflect.DeepEqual(got, []string{addr("durable")}) {
		t.Fatalf("PointAddrs after reopen = %v, want [%s]", got, addr("durable"))
	}
}

func TestDiffDrivesTwoStoresToConvergence(t *testing.T) {
	a, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	a.Put("only-a", core.CachedPoint{Skipped: []string{"a"}})
	a.Put("shared", core.CachedPoint{Skipped: []string{"s"}})
	b.Put("shared", core.CachedPoint{Skipped: []string{"s"}})
	b.Put("only-b", core.CachedPoint{Skipped: []string{"b"}})

	// B answers A's diff: A's unique address is missing from B, B's unique
	// address is extra from A's perspective.
	diff := b.Diff(a.PointAddrs())
	if !reflect.DeepEqual(diff.Missing, []string{addr("only-a")}) {
		t.Fatalf("Missing = %v, want [%s]", diff.Missing, addr("only-a"))
	}
	if !reflect.DeepEqual(diff.Extra, []string{addr("only-b")}) {
		t.Fatalf("Extra = %v, want [%s]", diff.Extra, addr("only-b"))
	}
	if _, want := b.Digest(); diff.Points != 2 || diff.Digest != want {
		t.Fatalf("diff self-report (%d, %s) disagrees with Digest", diff.Points, diff.Digest)
	}

	// The reconciliation the fabric runs: push Missing to B, pull Extra
	// into A — over the same export/import wire the HTTP endpoints use.
	for _, ad := range diff.Missing {
		data, ok := a.ExportPoint(ad)
		if !ok {
			t.Fatalf("A cannot export its own point %s", ad)
		}
		if _, err := b.ImportPoint(data); err != nil {
			t.Fatalf("push %s: %v", ad, err)
		}
	}
	for _, ad := range diff.Extra {
		data, ok := b.ExportPoint(ad)
		if !ok {
			t.Fatalf("B cannot export its own point %s", ad)
		}
		if _, err := a.ImportPoint(data); err != nil {
			t.Fatalf("pull %s: %v", ad, err)
		}
	}
	na, da := a.Digest()
	nb, db := b.Digest()
	if na != 3 || nb != 3 || da != db {
		t.Fatalf("stores did not converge: (%d, %s) vs (%d, %s)", na, da, nb, db)
	}
	next := b.Diff(a.PointAddrs())
	if len(next.Missing) != 0 || len(next.Extra) != 0 {
		t.Fatalf("converged stores still diff: %+v", next)
	}
}

func TestDiffAnswersWithEmptySlicesNotNull(t *testing.T) {
	st, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	diff := st.Diff(nil)
	if diff.Missing == nil || diff.Extra == nil {
		t.Fatalf("empty diff must marshal as [] not null: %+v", diff)
	}
}

func TestRecordSyncRoundTripAndFsck(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []SyncRecord{
		{Peer: "http://w1:8080", Pulled: 2, Pushed: 1, Unix: 100},
		{Peer: "http://w2:8080", Pulled: 0, Pushed: 3, Unix: 50},
	}
	for _, rec := range recs {
		if err := st.RecordSync(rec); err != nil {
			t.Fatal(err)
		}
	}

	got := st.SyncRecords()
	if len(got) != 2 {
		t.Fatalf("SyncRecords returned %d record(s), want 2", len(got))
	}
	if got[0].Unix != 50 || got[1].Unix != 100 {
		t.Fatalf("records not ordered oldest-first: %+v", got)
	}
	if got[1].Peer != "http://w1:8080" || got[1].Pulled != 2 || got[1].Pushed != 1 {
		t.Fatalf("record did not round-trip: %+v", got[1])
	}
	if got[0].Version != syncRecordVersion {
		t.Fatalf("record version %q, want %q", got[0].Version, syncRecordVersion)
	}

	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SyncOK != 2 || rep.SyncCorrupt != 0 || !rep.Clean() {
		t.Fatalf("fsck of a healthy sync dir: %+v", rep)
	}
}

func TestFsckQuarantinesCorruptSyncRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RecordSync(SyncRecord{Peer: "http://w1:8080", Pulled: 1, Unix: 100}); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "sync", "00000000000000000200-deadbeef.gob")
	if err := os.WriteFile(torn, []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Readers skip the torn record; scan mode reports it without touching it.
	if got := st.SyncRecords(); len(got) != 1 {
		t.Fatalf("SyncRecords served a corrupt record: %+v", got)
	}
	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SyncOK != 1 || rep.SyncCorrupt != 1 || rep.Clean() {
		t.Fatalf("fsck scan of a torn sync record: %+v", rep)
	}

	// Repair mode quarantines it and the store comes back clean.
	rep, err = Fsck(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SyncCorrupt != 1 || rep.Quarantined == 0 {
		t.Fatalf("fsck repair did not quarantine: %+v", rep)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn sync record still in place after repair")
	}
	rep, err = Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.SyncOK != 1 {
		t.Fatalf("store not clean after sync repair: %+v", rep)
	}
}

func TestRecordSyncIsANoOpWithoutADirectory(t *testing.T) {
	st, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RecordSync(SyncRecord{Peer: "http://w1:8080", Unix: 1}); err != nil {
		t.Fatalf("memory-only RecordSync: %v", err)
	}
	if recs := st.SyncRecords(); recs != nil {
		t.Fatalf("memory-only SyncRecords = %+v, want nil", recs)
	}
}

package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/nvsim"
)

// Offline store checking and repair, behind `nvmexplorer fsck`. Fsck walks
// a store directory — point files, the memo snapshot, the job journal,
// study manifests — verifying each file the same way the live store does
// (version dispatch, checksum, address match), and in repair mode
// quarantines what is broken and rewrites what is merely stale (legacy
// pre-checksum point files are upgraded to the current checksummed
// format). It never touches the live nvsim memo: the memo snapshot is
// validated structurally, not loaded. Fsck is local-only by construction —
// a remote store is somebody else's directory; run fsck there.

// FsckReport is the result of one store scan.
type FsckReport struct {
	// Point files.
	PointsOK      int `json:"points_ok"`
	PointsLegacy  int `json:"points_legacy"`  // readable pre-checksum (v1) files
	PointsCorrupt int `json:"points_corrupt"` // torn, bit-flipped, or misplaced
	PointsUnknown int `json:"points_unknown"` // newer schema than this binary

	// Memo snapshot.
	MemoPresent bool `json:"memo_present"`
	MemoCorrupt bool `json:"memo_corrupt"`
	MemoEntries int  `json:"memo_entries"`

	// Job journal.
	JobsIncomplete int `json:"jobs_incomplete"`
	JobsCorrupt    int `json:"jobs_corrupt"`
	OrphanProgress int `json:"orphan_progress"` // progress files with no job record
	// OrphanShards counts shard-assignment records with no job record —
	// what a dead fabric coordinator leaves behind once its job journal is
	// gone but the fan-out record is not.
	OrphanShards int `json:"orphan_shards"`

	// Study manifests.
	StudiesOK      int `json:"studies_ok"`
	StudiesCorrupt int `json:"studies_corrupt"` // torn, bit-flipped, or misnamed
	StudiesUnknown int `json:"studies_unknown"` // newer schema than this binary

	// Anti-entropy sync records (DIR/sync/).
	SyncOK      int `json:"sync_ok"`
	SyncCorrupt int `json:"sync_corrupt"`

	// Repair actions taken (repair mode only).
	Repaired    int `json:"repaired"`    // legacy points rewritten to the current format
	Quarantined int `json:"quarantined"` // corrupt files moved to .corrupt/
	Removed     int `json:"removed"`     // orphan progress/shard files deleted
}

// Clean reports whether the scan found nothing wrong (legacy-format files
// are stale, not wrong).
func (r *FsckReport) Clean() bool {
	return r.PointsCorrupt == 0 && !r.MemoCorrupt && r.JobsCorrupt == 0 && r.OrphanProgress == 0 &&
		r.OrphanShards == 0 && r.StudiesCorrupt == 0 && r.SyncCorrupt == 0
}

// Summary renders the report for terminal output.
func (r *FsckReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "points: %d ok, %d legacy, %d corrupt", r.PointsOK, r.PointsLegacy, r.PointsCorrupt)
	if r.PointsUnknown > 0 {
		fmt.Fprintf(&b, ", %d unknown-version (left in place)", r.PointsUnknown)
	}
	b.WriteString("\n")
	switch {
	case !r.MemoPresent:
		b.WriteString("memo: no snapshot\n")
	case r.MemoCorrupt:
		b.WriteString("memo: snapshot CORRUPT\n")
	default:
		fmt.Fprintf(&b, "memo: snapshot ok (%d entries)\n", r.MemoEntries)
	}
	fmt.Fprintf(&b, "journal: %d incomplete job(s), %d corrupt, %d orphan progress file(s), %d orphan shard record(s)\n",
		r.JobsIncomplete, r.JobsCorrupt, r.OrphanProgress, r.OrphanShards)
	fmt.Fprintf(&b, "studies: %d ok, %d corrupt", r.StudiesOK, r.StudiesCorrupt)
	if r.StudiesUnknown > 0 {
		fmt.Fprintf(&b, ", %d unknown-version (left in place)", r.StudiesUnknown)
	}
	b.WriteString("\n")
	if r.SyncOK+r.SyncCorrupt > 0 {
		fmt.Fprintf(&b, "sync: %d record(s), %d corrupt\n", r.SyncOK, r.SyncCorrupt)
	}
	if r.Repaired+r.Quarantined+r.Removed > 0 {
		fmt.Fprintf(&b, "repair: %d rewritten, %d quarantined, %d removed\n",
			r.Repaired, r.Quarantined, r.Removed)
	}
	return b.String()
}

// Fsck scans (and with repair=true, repairs) a store directory on the real
// filesystem.
func Fsck(dir string, repair bool) (*FsckReport, error) {
	return FsckFS(dir, DiskFS, repair)
}

// FsckFS is Fsck with an explicit filesystem (tests).
func FsckFS(dir string, fsys FS, repair bool) (*FsckReport, error) {
	if dir == "" {
		return nil, errors.New("store: fsck needs a store directory")
	}
	if IsRemoteTarget(dir) {
		return nil, fmt.Errorf("store: fsck is local-only; run it against %s's own directory", dir)
	}
	if _, err := os.Stat(dir); errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %s: no such store", dir)
	}
	lb := newLocalBackend(dir, fsys)
	rep := &FsckReport{}
	if err := lb.fsckPoints(rep, repair); err != nil {
		return nil, err
	}
	if err := lb.fsckMemo(rep, repair); err != nil {
		return nil, err
	}
	if err := lb.fsckJobs(rep, repair); err != nil {
		return nil, err
	}
	if err := lb.fsckStudies(rep, repair); err != nil {
		return nil, err
	}
	if err := lb.fsckSync(rep, repair); err != nil {
		return nil, err
	}
	return rep, nil
}

func (lb *localBackend) fsckSync(rep *FsckReport, repair bool) error {
	ents, err := lb.fs.ReadDir(lb.syncDir())
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".gob") {
			continue
		}
		path := filepath.Join(lb.syncDir(), name)
		data, err := lb.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, status := decodeSyncRecord(data); status == readOK {
			rep.SyncOK++
		} else {
			rep.SyncCorrupt++
			if repair {
				lb.quarantine(path)
			}
		}
	}
	rep.Quarantined = int(lb.h.quarantined.Load())
	return nil
}

func (lb *localBackend) fsckStudies(rep *FsckReport, repair bool) error {
	ents, err := lb.fs.ReadDir(lb.studiesDir())
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".gob") {
			continue
		}
		path := filepath.Join(lb.studiesDir(), name)
		data, err := lb.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		rec, status := decodeStudyRecord(data, "")
		// A manifest at the wrong filename (copied or renamed) would never
		// load by its fingerprint: corrupt.
		if status == readOK && name != rec.Fingerprint+".gob" {
			status = readCorrupt
		}
		switch status {
		case readOK:
			rep.StudiesOK++
		case readCorrupt:
			rep.StudiesCorrupt++
			if repair {
				lb.quarantine(path)
			}
		case readMissing:
			rep.StudiesUnknown++
		}
	}
	rep.Quarantined = int(lb.h.quarantined.Load())
	return nil
}

func (lb *localBackend) fsckPoints(rep *FsckReport, repair bool) error {
	root := filepath.Join(lb.dir, "points")
	shards, err := lb.fs.ReadDir(root)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		shardDir := filepath.Join(root, sh.Name())
		ents, err := lb.fs.ReadDir(shardDir)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, ent := range ents {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, ".gob") {
				continue
			}
			path := filepath.Join(shardDir, name)
			data, err := lb.fs.ReadFile(path)
			if err != nil {
				return fmt.Errorf("store: %w", err)
			}
			p, status := decodePoint(data, "")
			// A record that decodes but sits at the wrong address (a copied
			// or renamed file) would never verify on read: corrupt.
			if status == readOK || status == readLegacy {
				if name != addr(p.Key)+".gob" {
					status = readCorrupt
				}
			}
			switch status {
			case readOK:
				rep.PointsOK++
			case readLegacy:
				rep.PointsLegacy++
				if repair {
					if out, err := encodePoint(p.Key, p.Point); err == nil {
						if err := lb.fs.WriteFileAtomic(path, out); err == nil {
							rep.Repaired++
						}
					}
				}
			case readCorrupt:
				rep.PointsCorrupt++
				if repair {
					lb.quarantine(path)
				}
			case readMissing:
				rep.PointsUnknown++
			}
		}
	}
	rep.Quarantined = int(lb.h.quarantined.Load())
	return nil
}

func (lb *localBackend) fsckMemo(rep *FsckReport, repair bool) error {
	data, err := lb.fs.ReadFile(lb.memoPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	rep.MemoPresent = true
	n, err := nvsim.CheckMemoSnapshot(bytes.NewReader(data))
	if err != nil {
		rep.MemoCorrupt = true
		if repair {
			lb.quarantine(lb.memoPath())
		}
	} else {
		rep.MemoEntries = n
	}
	rep.Quarantined = int(lb.h.quarantined.Load())
	return nil
}

func (lb *localBackend) fsckJobs(rep *FsckReport, repair bool) error {
	ents, err := lb.fs.ReadDir(lb.jobsDir())
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	jobs := map[string]bool{}
	var progress, shards []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		path := filepath.Join(lb.jobsDir(), name)
		switch {
		case strings.HasSuffix(name, ".job"):
			data, err := lb.fs.ReadFile(path)
			if err != nil {
				return fmt.Errorf("store: %w", err)
			}
			rec, status := decodeJobRecord(data)
			switch status {
			case readOK:
				rep.JobsIncomplete++
				jobs[rec.ID] = true
			case readCorrupt:
				rep.JobsCorrupt++
				if repair {
					lb.quarantine(path)
				}
			}
		case strings.HasSuffix(name, ".progress"):
			progress = append(progress, strings.TrimSuffix(name, ".progress"))
		case strings.HasSuffix(name, ".shards"):
			shards = append(shards, strings.TrimSuffix(name, ".shards"))
		}
	}
	for _, id := range progress {
		if jobs[id] {
			continue
		}
		rep.OrphanProgress++
		if repair {
			if err := lb.fs.Remove(lb.progressPath(id)); err == nil {
				rep.Removed++
			}
		}
	}
	// A shard record whose job journal is gone belongs to a coordinator
	// that died after its job reached a terminal state mid-cleanup (or to
	// a journal quarantined above): nothing will ever resume it.
	for _, id := range shards {
		if jobs[id] {
			continue
		}
		rep.OrphanShards++
		if repair {
			if err := lb.fs.Remove(lb.shardsPath(id)); err == nil {
				rep.Removed++
			}
		}
	}
	rep.Quarantined = int(lb.h.quarantined.Load())
	return nil
}

package fabric

import (
	"testing"
	"time"
)

func testBreaker(threshold int) *breaker {
	return newBreaker(breakerConfig{
		threshold:  threshold,
		backoff:    100 * time.Millisecond,
		maxBackoff: 400 * time.Millisecond,
	}, 42)
}

func TestBreakerStartsUnprovenAndProbesImmediately(t *testing.T) {
	b := testBreaker(1)
	now := time.Now()
	if b.usable() {
		t.Fatal("a fresh breaker must not be usable before its first handshake")
	}
	if !b.allowProbe(now) {
		t.Fatal("a fresh breaker must admit a probe immediately (zero retryAt)")
	}
	// The probe moved it to half-open: a concurrent refresh must not send a
	// second probe.
	if b.allowProbe(now) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	if !b.onSuccess() {
		t.Fatal("closing from half-open must report a reset")
	}
	if !b.usable() {
		t.Fatal("breaker not usable after a successful probe")
	}
	if b.onSuccess() {
		t.Fatal("a success while already closed is not a reset")
	}
}

func TestBreakerTripsAtThresholdWithJitteredBackoff(t *testing.T) {
	b := testBreaker(2)
	b.onSuccess() // close it
	now := time.Now()
	if b.onFailure(now) {
		t.Fatal("tripped below the failure threshold")
	}
	if !b.usable() {
		t.Fatal("one failure below threshold must not open the breaker")
	}
	if !b.onFailure(now) {
		t.Fatal("threshold failure did not trip")
	}
	if b.usable() {
		t.Fatal("tripped breaker still usable")
	}
	// The retry window is the base backoff with 50–100% jitter.
	wait := b.retryAt.Sub(now)
	if wait < 50*time.Millisecond || wait > 100*time.Millisecond {
		t.Fatalf("first open interval %v outside [50ms, 100ms]", wait)
	}
	if b.allowProbe(now) {
		t.Fatal("open breaker admitted a probe before retryAt")
	}
	if !b.allowProbe(now.Add(150 * time.Millisecond)) {
		t.Fatal("open breaker refused a probe after retryAt")
	}
	// A failed probe re-trips from half-open with a doubled interval.
	if !b.onFailure(now) {
		t.Fatal("half-open failure did not re-trip")
	}
	wait = b.retryAt.Sub(now)
	if wait < 100*time.Millisecond || wait > 200*time.Millisecond {
		t.Fatalf("second open interval %v outside [100ms, 200ms]", wait)
	}
}

func TestBreakerBackoffIsCappedAndResetBySuccess(t *testing.T) {
	b := testBreaker(1)
	b.onSuccess()
	now := time.Now()
	for i := 0; i < 10; i++ {
		b.allowProbe(b.retryAt.Add(time.Second)) // walk to half-open
		b.onFailure(now)
	}
	if wait := b.retryAt.Sub(now); wait > 400*time.Millisecond {
		t.Fatalf("open interval %v exceeds the 400ms ceiling", wait)
	}
	b.allowProbe(b.retryAt.Add(time.Second))
	b.onSuccess()
	b.onFailure(now) // threshold 1: trips again
	if wait := b.retryAt.Sub(now); wait > 100*time.Millisecond {
		t.Fatalf("backoff not reset by success: first interval after reset is %v", wait)
	}
}

func TestBreakerJitterIsDeterministicPerSeed(t *testing.T) {
	sequence := func(seed int64) []time.Duration {
		b := newBreaker(breakerConfig{threshold: 1, backoff: 100 * time.Millisecond, maxBackoff: time.Hour}, seed)
		b.onSuccess()
		now := time.Now()
		var waits []time.Duration
		for i := 0; i < 5; i++ {
			b.onFailure(now)
			waits = append(waits, b.retryAt.Sub(now))
			b.allowProbe(b.retryAt.Add(time.Second))
		}
		return waits
	}
	a, b := sequence(7), sequence(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at trip %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sequence(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestBreakerForceOpenIsImmediatelyProbeable(t *testing.T) {
	b := testBreaker(1)
	b.onSuccess()
	b.forceOpen()
	if b.usable() {
		t.Fatal("force-opened breaker still usable")
	}
	if !b.allowProbe(time.Now()) {
		t.Fatal("force-opened breaker must admit a probe immediately")
	}
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
)

// localBackend is the CRC-enveloped directory backend: one gob file per
// point under DIR/points/ (sharded by the first hash byte), the memo
// snapshot at DIR/memo.gob, study manifests under DIR/studies/, and the
// job journal under DIR/jobs/. All writes are atomic (temp file + rename,
// owned by the FS seam), corrupt files are quarantined into DIR/.corrupt/,
// transient I/O errors retry with backoff, and a disk that keeps failing
// degrades the backend to a no-op.
type localBackend struct {
	dir string
	fs  FS
	h   health
}

func newLocalBackend(dir string, fsys FS) *localBackend {
	return &localBackend{dir: dir, fs: fsys}
}

func (lb *localBackend) Kind() string   { return "local" }
func (lb *localBackend) Target() string { return lb.dir }

// enabled reports whether the backend should touch the disk at all.
func (lb *localBackend) enabled() bool { return !lb.h.degraded.Load() }

func (lb *localBackend) memoPath() string { return filepath.Join(lb.dir, "memo.gob") }

// pointPath shards point files by the first hash byte to keep directory
// listings manageable under large campaigns.
func (lb *localBackend) pointPath(sum string) string {
	return filepath.Join(lb.dir, "points", sum[:2], sum+".gob")
}

func (lb *localBackend) studiesDir() string { return filepath.Join(lb.dir, "studies") }

func (lb *localBackend) studyPath(fingerprint string) string {
	return filepath.Join(lb.studiesDir(), fingerprint+".gob")
}

func (lb *localBackend) jobsDir() string { return filepath.Join(lb.dir, "jobs") }

func (lb *localBackend) jobPath(id string) string {
	return filepath.Join(lb.jobsDir(), id+".job")
}

func (lb *localBackend) progressPath(id string) string {
	return filepath.Join(lb.jobsDir(), id+".progress")
}

func (lb *localBackend) shardsPath(id string) string {
	return filepath.Join(lb.jobsDir(), id+".shards")
}

// quarantine moves a corrupt or foreign file into DIR/.corrupt/ so it can
// never crash (or slow) another run, while staying available for forensics.
// Failures are swallowed: quarantine is best-effort cleanup on a path that
// already reads as a miss.
func (lb *localBackend) quarantine(path string) {
	dir := filepath.Join(lb.dir, ".corrupt")
	if err := lb.fs.MkdirAll(dir); err != nil {
		return
	}
	dst := filepath.Join(dir, fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano()))
	if err := lb.fs.Rename(path, dst); err != nil {
		return
	}
	lb.h.quarantined.Add(1)
}

// readFileRetry reads a file, retrying transient I/O errors once. Absence
// is a clean miss; any other persistent error counts toward degradation.
func (lb *localBackend) readFileRetry(path string) ([]byte, readStatus) {
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			lb.h.retries.Add(1)
			time.Sleep(ioBackoff)
		}
		var data []byte
		if data, err = lb.fs.ReadFile(path); err == nil {
			return data, readOK
		}
		if os.IsNotExist(err) {
			return nil, readMissing
		}
	}
	lb.h.fail("disk", "read "+path, err)
	return nil, readIOError
}

// writeFileRetry atomically writes a file, retrying transient failures
// with exponential backoff before feeding the degradation tracker.
func (lb *localBackend) writeFileRetry(path string, data []byte) error {
	var err error
	for attempt := 0; attempt < ioAttempts; attempt++ {
		if attempt > 0 {
			lb.h.retries.Add(1)
			time.Sleep(ioBackoff << (attempt - 1))
		}
		if err = lb.fs.WriteFileAtomic(path, data); err == nil {
			lb.h.ok()
			return nil
		}
	}
	lb.h.fail("disk", "write "+path, err)
	return err
}

// ReadPoint loads and verifies one point file. Any failure is a miss:
// absence silently, I/O errors after a retry (feeding the degradation
// tracker), and corruption — torn write, checksum mismatch, schema drift,
// hash collision — after quarantining the file so it never costs another
// read.
func (lb *localBackend) ReadPoint(key string) (core.CachedPoint, bool) {
	path := lb.pointPath(addr(key))
	data, status := lb.readFileRetry(path)
	if status != readOK {
		return core.CachedPoint{}, false
	}
	p, status := decodePoint(data, key)
	switch status {
	case readOK, readLegacy:
		lb.h.ok()
		return p.Point, true
	case readCorrupt:
		lb.quarantine(path)
	}
	return core.CachedPoint{}, false
}

func (lb *localBackend) WritePoint(key string, pt core.CachedPoint) error {
	if !lb.enabled() {
		return nil
	}
	path := lb.pointPath(addr(key))
	data, err := encodePoint(key, pt)
	if err != nil {
		return err
	}
	if err := lb.fs.MkdirAll(filepath.Dir(path)); err != nil {
		lb.h.fail("disk", "mkdir "+filepath.Dir(path), err)
		return err
	}
	return lb.writeFileRetry(path, data)
}

// ExportPoint returns the raw envelope bytes of one record by content
// address. No verification happens here — the wire protocol's consumer
// decodes and checksums, exactly as a local read would.
func (lb *localBackend) ExportPoint(addrHex string) ([]byte, bool) {
	if !lb.enabled() || len(addrHex) < 2 {
		return nil, false
	}
	data, status := lb.readFileRetry(lb.pointPath(addrHex))
	if status != readOK {
		return nil, false
	}
	return data, true
}

func (lb *localBackend) LoadMemo() ([]byte, bool) {
	if !lb.enabled() {
		return nil, false
	}
	data, err := lb.fs.ReadFile(lb.memoPath())
	if err != nil {
		return nil, false
	}
	return data, true
}

func (lb *localBackend) DiscardMemo() {
	lb.h.memoDiscards.Add(1)
	lb.quarantine(lb.memoPath())
}

// PointAddrs walks DIR/points/<2hex>/ and lists every record's content
// address (the filename without extension). Unreadable directories read as
// empty: anti-entropy treats an ailing disk like a store with no points,
// and the degradation tracker catches persistent failures elsewhere.
func (lb *localBackend) PointAddrs() []string {
	if !lb.enabled() {
		return nil
	}
	shards, err := lb.fs.ReadDir(filepath.Join(lb.dir, "points"))
	if err != nil {
		return nil
	}
	var addrs []string
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		ents, err := lb.fs.ReadDir(filepath.Join(lb.dir, "points", shard.Name()))
		if err != nil {
			continue
		}
		for _, ent := range ents {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, ".gob") {
				continue
			}
			addrs = append(addrs, strings.TrimSuffix(name, ".gob"))
		}
	}
	return addrs
}

func (lb *localBackend) SaveMemo(data []byte) error {
	if !lb.enabled() {
		return nil
	}
	return lb.writeFileRetry(lb.memoPath(), data)
}

func (lb *localBackend) WriteStudy(rec StudyRecord) error {
	if !lb.enabled() {
		return nil
	}
	data, err := encodeStudyRecord(rec)
	if err != nil {
		return err
	}
	if err := lb.fs.MkdirAll(lb.studiesDir()); err != nil {
		lb.h.fail("disk", "mkdir "+lb.studiesDir(), err)
		return err
	}
	return lb.writeFileRetry(lb.studyPath(rec.Fingerprint), data)
}

func (lb *localBackend) ReadStudy(fingerprint string) (StudyRecord, bool) {
	if !lb.enabled() {
		return StudyRecord{}, false
	}
	path := lb.studyPath(fingerprint)
	data, status := lb.readFileRetry(path)
	if status != readOK {
		return StudyRecord{}, false
	}
	rec, status := decodeStudyRecord(data, fingerprint)
	switch status {
	case readOK:
		lb.h.ok()
		return rec, true
	case readCorrupt:
		lb.quarantine(path)
	}
	return StudyRecord{}, false
}

func (lb *localBackend) StudyFingerprints() []string {
	if !lb.enabled() {
		return nil
	}
	ents, err := lb.fs.ReadDir(lb.studiesDir())
	if err != nil {
		return nil
	}
	var fps []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".gob") {
			continue
		}
		fps = append(fps, strings.TrimSuffix(name, ".gob"))
	}
	return fps
}

func (lb *localBackend) Health() HealthStats { return lb.h.stats() }
func (lb *localBackend) Degraded() bool      { return lb.h.degraded.Load() }

// Package query answers design-space questions from the persistent store
// without running the characterization engine — the read side of
// NVMExplorer-Go. The paper's exploration loop asks questions like "which
// eNVM config wins for my read-dominated workload under this power
// budget?" over *already-computed* sweeps; PRs 4/6 made those sweeps
// durable and content-addressed, and this package makes them queryable:
// an in-memory columnar index over every stored study, with axis and
// metric-range filters, top-k ranking by any named metric, and
// frontier-of-union Pareto selection across studies.
//
// The index is built from study manifests (store.StudyRecord): each
// manifest's effective configuration is re-expanded into a core.Study,
// its fingerprint verified, and every grid point fetched from the store
// by its canonical key (core.Study.PointKey) — the same replay path a
// warm re-run takes, minus the engine entirely. Point values are then
// shredded into per-metric float columns, so a warm query is a column
// scan plus a sort: microseconds, zero characterizations, zero
// allocations proportional to the store (only to the result).
//
// Results come back as a *core.Results over a synthetic "query" study, so
// every existing writer (JSON/NDJSON/CSV/HTML dashboard) renders them
// unchanged — `GET /v1/query` and `nvmexplorer query` share this package
// and the sweep writers end to end.
package query

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/nvsim"
	"repro/internal/store"
	"repro/internal/sweep"
)

// Typed request errors, so HTTP and CLI surfaces can map them to the right
// failure shape (404 vs 400) without string matching.
var (
	// ErrUnknownStudy reports a study selector matching no stored study.
	ErrUnknownStudy = errors.New("query: unknown study")
	// ErrAmbiguousStudy reports a name selector matching several stored
	// studies (select by fingerprint instead).
	ErrAmbiguousStudy = errors.New("query: ambiguous study name")
	// ErrBadRequest reports an invalid request shape: unknown metric names,
	// top-k without a sort metric, and similar.
	ErrBadRequest = errors.New("query: bad request")
	// ErrIncomplete reports a study whose manifest exists but whose points
	// are not all in the store (an interrupted run, or a shared directory
	// missing files).
	ErrIncomplete = errors.New("query: study incomplete in store")
)

// entry is one indexed study: its manifest, the re-expanded study (for
// axis declarations and row rendering), the replayed rows, and the
// columnar shred of every named metric.
type entry struct {
	rec     store.StudyRecord
	study   *core.Study
	arrays  []nvsim.Result
	metrics []eval.Metrics
	skipped []string

	// Columnar views over metrics, built once at load: one float column
	// per named metric plus the axis coordinate columns filters scan.
	cols     map[string][]float64
	cells    []string
	techs    []string
	patterns []string
	targets  []string
	caps     []int64
}

// Index is the read-optimized view over one store's completed studies. It
// is safe for concurrent use; Refresh and Query may interleave freely.
type Index struct {
	st *store.Store

	mu         sync.RWMutex
	entries    map[string]*entry // fingerprint → loaded study
	incomplete map[string]bool   // fingerprints seen but not fully stored
	gen        int64             // bumped whenever the loaded set changes

	queries atomic.Int64
}

// New builds an empty index over a store. Call Refresh to load it.
func New(st *store.Store) *Index {
	return &Index{st: st, entries: map[string]*entry{}, incomplete: map[string]bool{}}
}

// Generation identifies the index's current content; it changes exactly
// when a Refresh changes the loaded study set, so responses cached against
// a generation (ETags) stay valid until the index actually moves.
func (ix *Index) Generation() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.gen
}

// Stats is the index's telemetry, served on /v1/stats.
type Stats struct {
	// Studies counts fully loaded (queryable) studies.
	Studies int `json:"studies"`
	// Incomplete counts manifests whose points are not all stored.
	Incomplete int `json:"incomplete"`
	// Rows counts indexed result rows across all loaded studies.
	Rows int `json:"rows"`
	// Generation is the index content version (see Generation).
	Generation int64 `json:"generation"`
	// Queries counts Query calls since the index was built.
	Queries int64 `json:"queries"`
}

// Stats returns the current counters.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rows := 0
	for _, e := range ix.entries {
		rows += len(e.metrics)
	}
	return Stats{
		Studies:    len(ix.entries),
		Incomplete: len(ix.incomplete),
		Rows:       rows,
		Generation: ix.gen,
		Queries:    ix.queries.Load(),
	}
}

// Refresh synchronizes the index with the store's manifests: newly stored
// studies are loaded (their points replayed from the store — never the
// engine — and shredded into columns), previously incomplete studies are
// retried, and studies whose manifests disappeared are dropped. It returns
// the generation after synchronization.
func (ix *Index) Refresh() int64 {
	recs := ix.st.ListStudies()
	ix.mu.Lock()
	defer ix.mu.Unlock()

	changed := false
	seen := make(map[string]bool, len(recs))
	for _, rec := range recs {
		seen[rec.Fingerprint] = true
		if _, ok := ix.entries[rec.Fingerprint]; ok {
			continue
		}
		e, err := ix.load(rec)
		if err != nil {
			if !ix.incomplete[rec.Fingerprint] {
				ix.incomplete[rec.Fingerprint] = true
				changed = true
			}
			continue
		}
		ix.entries[rec.Fingerprint] = e
		if ix.incomplete[rec.Fingerprint] {
			delete(ix.incomplete, rec.Fingerprint)
		}
		changed = true
	}
	for fp := range ix.entries {
		if !seen[fp] {
			delete(ix.entries, fp)
			changed = true
		}
	}
	for fp := range ix.incomplete {
		if !seen[fp] {
			delete(ix.incomplete, fp)
			changed = true
		}
	}
	if changed {
		ix.gen++
	}
	return ix.gen
}

// load replays one manifest out of the store. Zero engine work by
// construction: the config is expanded with no cache attached and never
// run — the study object exists only to enumerate point keys and carry
// axis declarations into rendering.
func (ix *Index) load(rec store.StudyRecord) (*entry, error) {
	cfg, err := sweep.Parse(bytes.NewReader(rec.Config))
	if err != nil {
		return nil, fmt.Errorf("manifest %s: %w", rec.Fingerprint, err)
	}
	s, err := cfg.Study()
	if err != nil {
		return nil, fmt.Errorf("manifest %s: %w", rec.Fingerprint, err)
	}
	fp, err := s.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("manifest %s: %w", rec.Fingerprint, err)
	}
	if fp != rec.Fingerprint {
		return nil, fmt.Errorf("manifest %s: config re-expands to fingerprint %s", rec.Fingerprint, fp)
	}
	specs, err := s.Space()
	if err != nil {
		return nil, err
	}
	// An adaptive manifest stores only the evaluated subset of the grid;
	// replay exactly the recorded indices. Exhaustive manifests (Exploration
	// nil) replay the full space, as before.
	indices := make([]int, 0, len(specs))
	if x := rec.Exploration; x != nil && x.Indices != nil {
		for _, idx := range x.Indices {
			if idx < 0 || idx >= len(specs) {
				return nil, fmt.Errorf("manifest %s: evaluated index %d outside the %d-point grid",
					rec.Fingerprint, idx, len(specs))
			}
			indices = append(indices, idx)
		}
	} else {
		for i := range specs {
			indices = append(indices, i)
		}
	}
	e := &entry{rec: rec, study: s}
	for n, i := range indices {
		cp, ok := ix.st.Get(s.PointKey(specs[i]))
		if !ok {
			return nil, fmt.Errorf("%w: %s missing point %d/%d", ErrIncomplete, rec.Fingerprint, n, len(indices))
		}
		e.arrays = append(e.arrays, cp.Arrays...)
		e.metrics = append(e.metrics, cp.Metrics...)
		e.skipped = append(e.skipped, cp.Skipped...)
	}
	e.shred()
	return e, nil
}

// shred builds the entry's columnar views: one float column per named
// metric, one string/int column per filterable axis coordinate.
func (e *entry) shred() {
	names := core.MetricNames()
	e.cols = make(map[string][]float64, len(names))
	for _, name := range names {
		col := make([]float64, len(e.metrics))
		for i := range e.metrics {
			col[i], _ = core.MetricValue(name, &e.metrics[i])
		}
		e.cols[name] = col
	}
	e.cells = make([]string, len(e.metrics))
	e.techs = make([]string, len(e.metrics))
	e.patterns = make([]string, len(e.metrics))
	e.targets = make([]string, len(e.metrics))
	e.caps = make([]int64, len(e.metrics))
	for i := range e.metrics {
		m := &e.metrics[i]
		e.cells[i] = m.Array.Cell.Name
		e.techs[i] = m.Array.Cell.Tech.String()
		e.patterns[i] = m.Pattern.Name
		e.targets[i] = m.Array.Target.String()
		e.caps[i] = m.Array.CapacityBytes
	}
}

// StudySummary is one listed study, complete or not.
type StudySummary struct {
	Fingerprint string `json:"fingerprint"`
	Name        string `json:"name"`
	Points      int    `json:"points"`
	// Rows counts indexed result rows (0 while incomplete).
	Rows int `json:"rows"`
	// Complete reports whether every grid point is in the store and the
	// study is queryable.
	Complete bool `json:"complete"`
}

// Studies lists every known study — loaded and incomplete — sorted by name
// then fingerprint.
func (ix *Index) Studies() []StudySummary {
	recs := ix.st.ListStudies()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]StudySummary, 0, len(recs))
	for _, rec := range recs {
		sum := StudySummary{Fingerprint: rec.Fingerprint, Name: rec.Name, Points: rec.Points}
		if e, ok := ix.entries[rec.Fingerprint]; ok {
			sum.Rows = len(e.metrics)
			sum.Complete = true
		}
		out = append(out, sum)
	}
	return out
}

// Request is one query over the index. The zero value selects every row of
// every complete study.
type Request struct {
	// Studies selects the source studies, each entry a fingerprint or a
	// study name (a name must match exactly one stored study). Empty
	// selects every complete study.
	Studies []string

	// Axis filters; empty/zero values match everything.
	Cell       string
	Technology string
	Pattern    string
	Target     string
	Capacity   int64

	// Min and Max bound named metrics (inclusive); rows whose metric is
	// NaN never satisfy a bound.
	Min map[string]float64
	Max map[string]float64

	// Sort orders rows by a named metric, ascending by default (NaN last
	// either way); Desc reverses. Rows otherwise keep study-then-row order.
	Sort string
	Desc bool

	// Top keeps only the first k rows after sorting; it requires Sort.
	Top int

	// Frontier selects the Pareto frontier of the union of the filtered
	// rows on the named metrics (core.SelectPareto semantics), marking
	// surviving rows in every output format.
	Frontier []string
}

// Response is one answered query.
type Response struct {
	// Results holds the selected rows as a synthetic study, renderable by
	// every sweep writer.
	Results *core.Results
	// Studies lists the source fingerprints, in the order rows were drawn.
	Studies []string
	// Rows counts the selected rows.
	Rows int
	// Generation is the index generation the answer was computed at.
	Generation int64
}

// Load returns a stored study's replayed results by fingerprint, exactly
// as the original run produced them (same rows, same order, same axis
// declarations) — the engine-free body behind GET /v1/studies/{fp}. The
// boolean distinguishes "unknown" (false) from known-but-incomplete
// (ErrIncomplete).
func (ix *Index) Load(fingerprint string) (*core.Results, bool, error) {
	ix.mu.RLock()
	e, ok := ix.entries[fingerprint]
	ix.mu.RUnlock()
	if !ok {
		if _, found := ix.st.LoadStudy(fingerprint); !found {
			return nil, false, nil
		}
		ix.Refresh()
		ix.mu.RLock()
		e, ok = ix.entries[fingerprint]
		ix.mu.RUnlock()
		if !ok {
			return nil, true, fmt.Errorf("%w: %s", ErrIncomplete, fingerprint)
		}
	}
	res := &core.Results{
		Study:       e.study,
		Arrays:      e.arrays,
		Metrics:     e.metrics,
		Skipped:     e.skipped,
		Exploration: e.rec.Exploration,
	}
	return res, true, nil
}

// rowRef addresses one selected row: its source entry and row index.
type rowRef struct {
	e   *entry
	row int
}

// sortRow decorates one selected row with its sort key and base-order
// position, so ranking needs no column lookups inside the comparator.
type sortRow struct {
	ref rowRef
	key float64
	pos int
}

// bound is one metric range check resolved against a source's column.
type bound struct {
	col   []float64
	limit float64
	min   bool
}

// Query answers one request from the warm index. It performs no engine
// work and no store reads — only column scans over loaded entries.
func (ix *Index) Query(req Request) (*Response, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	ix.queries.Add(1)
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	sources, err := ix.resolve(req.Studies)
	if err != nil {
		return nil, err
	}

	// Filter: scan each source's columns, collecting surviving row refs in
	// study-then-row order (the deterministic base order). Metric bounds
	// are resolved to their columns once per source, so the row loop is
	// pure slice indexing.
	total := 0
	for _, e := range sources {
		total += len(e.metrics)
	}
	rows := make([]rowRef, 0, total)
	for _, e := range sources {
		var bounds []bound
		for name, lo := range req.Min {
			bounds = append(bounds, bound{col: e.cols[name], limit: lo, min: true})
		}
		for name, hi := range req.Max {
			bounds = append(bounds, bound{col: e.cols[name], limit: hi})
		}
	rowLoop:
		for i := range e.metrics {
			if req.Cell != "" && e.cells[i] != req.Cell {
				continue
			}
			if req.Technology != "" && e.techs[i] != req.Technology {
				continue
			}
			if req.Pattern != "" && e.patterns[i] != req.Pattern {
				continue
			}
			if req.Target != "" && e.targets[i] != req.Target {
				continue
			}
			if req.Capacity != 0 && e.caps[i] != req.Capacity {
				continue
			}
			for _, b := range bounds {
				// NaN never satisfies a bound (a power filter should not
				// admit a row with unknown power); both comparisons below
				// are false for NaN, so NaN rows fall through to the skip.
				v := b.col[i]
				if b.min {
					if !(v >= b.limit) {
						continue rowLoop
					}
				} else if !(v <= b.limit) {
					continue rowLoop
				}
			}
			rows = append(rows, rowRef{e: e, row: i})
		}
	}

	// Sort: stable over the base order (explicit position tiebreak), NaN
	// ranked last in either sense. Keys are hoisted out of the comparator
	// and the sort is non-reflective — this is the warm path's hot loop.
	if req.Sort != "" {
		keyed := make([]sortRow, len(rows))
		for i, r := range rows {
			keyed[i] = sortRow{ref: r, key: r.e.cols[req.Sort][r.row], pos: i}
		}
		desc := req.Desc
		slices.SortFunc(keyed, func(a, b sortRow) int {
			an, bn := math.IsNaN(a.key), math.IsNaN(b.key)
			switch {
			case an && bn:
				return a.pos - b.pos
			case an:
				return 1
			case bn:
				return -1
			case a.key != b.key:
				if (a.key < b.key) != desc {
					return -1
				}
				return 1
			}
			return a.pos - b.pos
		})
		for i := range keyed {
			rows[i] = keyed[i].ref
		}
	}
	if req.Top > 0 && len(rows) > req.Top {
		rows = rows[:req.Top]
	}

	res := &core.Results{Study: unionStudy(sources, req.Frontier)}
	res.Metrics = make([]eval.Metrics, 0, len(rows))
	for _, r := range rows {
		res.Metrics = append(res.Metrics, r.e.metrics[r.row])
		// Arrays back the dashboard's characterized-arrays table: keep each
		// distinct array once, in first-appearance order.
		a := r.e.metrics[r.row].Array
		if n := len(res.Arrays); n == 0 || !reflect.DeepEqual(res.Arrays[n-1], a) {
			res.Arrays = append(res.Arrays, a)
		}
	}
	if len(req.Frontier) > 0 {
		if _, err := res.SelectPareto(req.Frontier...); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}

	out := &Response{Results: res, Rows: len(rows), Generation: ix.gen}
	for _, e := range sources {
		out.Studies = append(out.Studies, e.rec.Fingerprint)
	}
	return out, nil
}

// validate rejects malformed requests before any work happens.
func validate(req Request) error {
	if req.Top < 0 {
		return fmt.Errorf("%w: negative top %d", ErrBadRequest, req.Top)
	}
	if req.Top > 0 && req.Sort == "" {
		return fmt.Errorf("%w: top requires a sort metric", ErrBadRequest)
	}
	if req.Sort != "" {
		if _, ok := core.MetricValue(req.Sort, &eval.Metrics{}); !ok {
			return fmt.Errorf("%w: unknown sort metric %q (want one of %v)",
				ErrBadRequest, req.Sort, core.MetricNames())
		}
	}
	for _, bounds := range []map[string]float64{req.Min, req.Max} {
		for name := range bounds {
			if _, ok := core.MetricValue(name, &eval.Metrics{}); !ok {
				return fmt.Errorf("%w: unknown metric %q in range filter (want one of %v)",
					ErrBadRequest, name, core.MetricNames())
			}
		}
	}
	if len(req.Frontier) > 0 {
		if err := core.ValidateParetoMetrics(req.Frontier); err != nil {
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	return nil
}

// resolve maps study selectors to loaded entries. Callers hold ix.mu.
func (ix *Index) resolve(selectors []string) ([]*entry, error) {
	if len(selectors) == 0 {
		// Every complete study, in deterministic (name, fingerprint) order.
		all := make([]*entry, 0, len(ix.entries))
		for _, e := range ix.entries {
			all = append(all, e)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].rec.Name != all[j].rec.Name {
				return all[i].rec.Name < all[j].rec.Name
			}
			return all[i].rec.Fingerprint < all[j].rec.Fingerprint
		})
		return all, nil
	}
	out := make([]*entry, 0, len(selectors))
	for _, sel := range selectors {
		if e, ok := ix.entries[sel]; ok {
			out = append(out, e)
			continue
		}
		var byName *entry
		matches := 0
		for _, e := range ix.entries {
			if e.rec.Name == sel {
				byName = e
				matches++
			}
		}
		switch {
		case matches == 1:
			out = append(out, byName)
		case matches > 1:
			return nil, fmt.Errorf("%w: %q matches %d studies (select by fingerprint)",
				ErrAmbiguousStudy, sel, matches)
		case ix.incomplete[sel]:
			return nil, fmt.Errorf("%w: %s", ErrIncomplete, sel)
		default:
			return nil, fmt.Errorf("%w: %q", ErrUnknownStudy, sel)
		}
	}
	return out, nil
}

// unionStudy builds the synthetic study a query result renders under: axis
// columns appear when any source study declares the axis (the union), so
// mixed-source rows always have a consistent column set, and the requested
// frontier metrics become the study's Pareto declaration.
func unionStudy(sources []*entry, frontier []string) *core.Study {
	s := core.NewStudy("query")
	s.Pareto = frontier
	for _, e := range sources {
		if e.study.Declares(core.AxisWordBits) {
			s.WordBitsAxis = []int{0}
		}
		if e.study.Declares(core.AxisWriteBuffer) {
			s.WriteBuffers = []*eval.WriteBufferConfig{nil}
		}
		if e.study.Declares(core.AxisFault) {
			s.Faults = []*eval.FaultConfig{nil}
		}
		if e.study.Options.Fault != nil && s.Options.Fault == nil {
			s.Options.Fault = e.study.Options.Fault
		}
	}
	return s
}

// Package store is NVMExplorer-Go's persistent, content-addressed study
// store: the durable layer under the characterization pipeline that lets
// repeated and partially overlapping studies reuse prior work across
// process restarts (`nvmexplorer run -store DIR`, `nvmexplorer serve
// -store DIR`).
//
// The store holds one entry per evaluated design point, addressed by the
// SHA-256 of the point's canonical key (core.Study.PointKey): the cell
// definition, capacity, word bits, bits per cell, targets, constraints,
// traffic, and the resolved per-point evaluation options. Any study whose
// grid contains a stored point — same study or a different one submitted
// later — replays it verbatim, so a fully warm study performs zero engine
// characterizations and returns bytes identical to a cold run.
//
// Entries live in memory (bounded) and, when a directory is configured, on
// disk as one gob file per point under DIR/points/, written atomically
// (temp file + rename) so a crash never leaves a torn entry. The store also
// snapshots the nvsim memo cache to DIR/memo.gob (SaveMemo, reloaded by
// Open) so partially overlapping studies skip re-characterization too.
package store

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/nvsim"
)

// recordVersion stamps every point file; entries from other schema versions
// read as misses and are overwritten on the next Put.
const recordVersion = "nvmx-store/v1"

// memCacheMax bounds the in-memory mirror of the store. Past the cap, Get
// still reads disk and Put still writes it; the entries just aren't kept
// resident.
const memCacheMax = 16384

// record is the on-disk form of one point. The full canonical key is
// stored alongside the payload and verified on read, so a hash collision
// or a foreign file in the directory reads as a miss, never a wrong result.
type record struct {
	Version string
	Key     string
	Point   core.CachedPoint
}

// Store is a persistent point cache. It implements core.PointCache and is
// safe for concurrent use. The zero value is not usable; call Open.
type Store struct {
	dir string // "" = memory-only

	mu  sync.Mutex
	mem map[string]core.CachedPoint

	hits, misses atomic.Int64
}

// Open creates or reopens a store. dir == "" builds a memory-only store
// (no persistence, no memo snapshot). Otherwise the directory is created
// as needed and a memo snapshot left by SaveMemo is reloaded into the
// characterization engine; a missing, stale, or corrupt snapshot is
// ignored — it only costs recomputation.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, mem: make(map[string]core.CachedPoint)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(filepath.Join(dir, "points"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if f, err := os.Open(s.memoPath()); err == nil {
		_, _ = nvsim.RestoreMemo(f) // best effort; see doc comment
		f.Close()
	}
	return s, nil
}

// Dir returns the backing directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

func (s *Store) memoPath() string { return filepath.Join(s.dir, "memo.gob") }

// pointPath shards point files by the first hash byte to keep directory
// listings manageable under large campaigns.
func (s *Store) pointPath(sum string) string {
	return filepath.Join(s.dir, "points", sum[:2], sum+".gob")
}

// addr content-addresses a canonical point key.
func addr(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Get implements core.PointCache: memory first, then disk. A disk hit is
// re-cached in memory (within the bound).
func (s *Store) Get(key string) (core.CachedPoint, bool) {
	s.mu.Lock()
	cp, ok := s.mem[key]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return cp, true
	}
	if s.dir != "" {
		if cp, ok = s.readPoint(key); ok {
			s.mu.Lock()
			if len(s.mem) < memCacheMax {
				s.mem[key] = cp
			}
			s.mu.Unlock()
			s.hits.Add(1)
			return cp, true
		}
	}
	s.misses.Add(1)
	return core.CachedPoint{}, false
}

// readPoint loads and verifies one point file. Any failure — absent file,
// torn write, schema drift, hash collision — is a miss.
func (s *Store) readPoint(key string) (core.CachedPoint, bool) {
	f, err := os.Open(s.pointPath(addr(key)))
	if err != nil {
		return core.CachedPoint{}, false
	}
	defer f.Close()
	var rec record
	if err := gob.NewDecoder(f).Decode(&rec); err != nil {
		return core.CachedPoint{}, false
	}
	if rec.Version != recordVersion || rec.Key != key {
		return core.CachedPoint{}, false
	}
	return rec.Point, true
}

// Put implements core.PointCache: write-through to memory and, when
// configured, disk. Disk errors are swallowed — the store is an
// accelerator, and a read-only or full volume must not fail the study.
func (s *Store) Put(key string, pt core.CachedPoint) {
	s.mu.Lock()
	if len(s.mem) < memCacheMax {
		s.mem[key] = pt
	}
	s.mu.Unlock()
	if s.dir == "" {
		return
	}
	_ = s.writePoint(key, pt)
}

func (s *Store) writePoint(key string, pt core.CachedPoint) error {
	path := s.pointPath(addr(key))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	rec := record{Version: recordVersion, Key: key, Point: pt}
	if err := gob.NewEncoder(tmp).Encode(&rec); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// SaveMemo snapshots the engine's memo cache into the store directory
// (atomic replace of DIR/memo.gob), so the next Open warms the engine for
// partially overlapping studies. Memory-only stores no-op.
func (s *Store) SaveMemo() error {
	if s.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, ".memo-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := nvsim.SnapshotMemo(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.memoPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Stats reports how many point lookups hit (served without touching the
// characterization engine) versus missed since the store was opened.
func (s *Store) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// ResetStats zeroes the hit/miss counters (tests and benchmarks).
func (s *Store) ResetStats() {
	s.hits.Store(0)
	s.misses.Store(0)
}

// Len reports how many points are resident in memory. Disk may hold more.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/viz"
)

// Run executes a configuration end to end.
func Run(cfg *Config) (*core.Results, error) {
	study, err := cfg.Study()
	if err != nil {
		return nil, err
	}
	return study.Run()
}

// RunFile loads a JSON configuration file and executes it.
func RunFile(path string) (*core.Results, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	defer f.Close()
	cfg, err := Parse(f)
	if err != nil {
		return nil, err
	}
	return Run(cfg)
}

// WriteCSVs writes one combined CSV per technology into dir, matching the
// artifact's output/results/[eNVM]_1BPC-combined.csv convention, and
// returns the file paths written.
func WriteCSVs(res *core.Results, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	// Partition metrics per technology name.
	perTech := map[string]*viz.Table{}
	var order []string
	for _, m := range res.Metrics {
		techName := m.Array.Cell.Tech.String()
		t, ok := perTech[techName]
		if !ok {
			t = viz.NewTable(techName,
				"Cell", "BitsPerCell", "CapacityBytes", "OptTarget", "Pattern",
				"ReadLatencyNS", "WriteLatencyNS", "ReadEnergyPJ", "WriteEnergyPJ",
				"LeakagePowerMW", "AreaMM2", "AreaEfficiency", "DensityMbPerMM2",
				"TotalPowerMW", "DynamicPowerMW", "MemTimePerSec", "TaskLatencyS",
				"MeetsTaskRate", "LifetimeYears")
			perTech[techName] = t
			order = append(order, techName)
		}
		a := m.Array
		t.MustAddRow(a.Cell.Name, fmt.Sprintf("%d", a.Cell.BitsPerCell),
			fmt.Sprintf("%d", a.CapacityBytes), a.Target.String(), m.Pattern.Name,
			a.ReadLatencyNS, a.WriteLatencyNS, a.ReadEnergyPJ, a.WriteEnergyPJ,
			a.LeakagePowerMW, a.AreaMM2, a.AreaEfficiency, a.DensityMbPerMM2(),
			m.TotalPowerMW, m.DynamicPowerMW, m.MemoryTimePerSec, m.TaskLatencyS,
			fmt.Sprintf("%v", m.MeetsTaskRate), m.LifetimeYears)
	}
	var paths []string
	for _, techName := range order {
		bpc := "1BPC"
		if strings.Contains(res.Study.Name, "mlc") {
			bpc = "combinedBPC"
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_%s-combined.csv", techName, bpc))
		f, err := os.Create(path)
		if err != nil {
			return paths, fmt.Errorf("sweep: %w", err)
		}
		if err := perTech[techName].WriteCSV(f); err != nil {
			f.Close()
			return paths, fmt.Errorf("sweep: writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

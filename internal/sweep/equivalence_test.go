package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
)

// legacyConfig exercises everything a pre-DesignSpace configuration could
// express: tentpole + custom cells, an MLC pass (with SRAM silently kept
// SLC-only), multiple capacities and targets, generic traffic, and a
// study-wide write buffer.
const legacyConfig = `{
  "name": "legacy_equivalence",
  "cells": [
    {"technology": "SRAM", "flavor": "Ref"},
    {"technology": "RRAM", "flavor": "Opt"},
    {"technology": "FeFET", "flavor": "Pess"}
  ],
  "custom_cells": [{
    "name": "MyRRAM", "technology": "RRAM", "area_f2": 10, "node_nm": 28,
    "read_latency_ns": 5, "write_latency_ns": 50,
    "read_energy_pj": 0.2, "write_energy_pj": 1.0,
    "endurance_cycles": 1e7, "retention_s": 1e8
  }],
  "bits_per_cell": [1, 2],
  "capacities_bytes": [1048576, 4194304],
  "opt_targets": ["ReadEDP", "Area"],
  "traffic": {"generic": {"read_gbs_lo": 1, "read_gbs_hi": 10,
               "write_gbs_lo": 0.01, "write_gbs_hi": 0.1, "points": 2}},
  "write_buffer": {"mask_latency": true, "buffer_latency_ns": 2, "traffic_reduction": 0.25},
  "max_area_mm2": 2.0
}`

// legacyStudy rebuilds the pre-refactor expansion of a configuration: MLC
// variants pre-cloned into the cell list in bits-major order (volatile
// cells keep only their SLC entry), with no bits-per-cell axis declared —
// exactly what sweep.Config.Study produced before the DesignSpace refactor.
func legacyStudy(t *testing.T, cfg *Config) *core.Study {
	t.Helper()
	s, err := cfg.Study()
	if err != nil {
		t.Fatal(err)
	}
	leg := *s
	leg.BitsPerCell = nil
	leg.Cells = nil
	for _, b := range s.BitsPerCell {
		for _, d := range s.Cells {
			md, err := cell.ToMLC(d, b)
			if err != nil {
				if b == 1 {
					t.Fatal(err)
				}
				continue
			}
			leg.Cells = append(leg.Cells, md)
		}
	}
	return &leg
}

// TestLegacyConfigByteIdentical is the acceptance gate of the DesignSpace
// refactor: a legacy sweep configuration must produce byte-identical JSON,
// NDJSON, and CSV output through the new axis enumeration compared to the
// old cell-cloning expansion — end to end, at several worker counts.
func TestLegacyConfigByteIdentical(t *testing.T) {
	cfg, err := Parse(strings.NewReader(legacyConfig))
	if err != nil {
		t.Fatal(err)
	}
	legacy := legacyStudy(t, cfg)
	legacy.Workers = 1
	wantRes, err := legacy.Run()
	if err != nil {
		t.Fatal(err)
	}
	render := func(res *core.Results) (jsonB, ndB, csvB []byte) {
		t.Helper()
		var jb, nb, cb bytes.Buffer
		if err := WriteJSON(&jb, res); err != nil {
			t.Fatal(err)
		}
		if err := WriteNDJSON(&nb, res); err != nil {
			t.Fatal(err)
		}
		if err := WriteCombinedCSV(&cb, res); err != nil {
			t.Fatal(err)
		}
		return jb.Bytes(), nb.Bytes(), cb.Bytes()
	}
	wantJSON, wantND, wantCSV := render(wantRes)
	if len(wantRes.Metrics) == 0 || len(wantRes.Skipped) == 0 {
		t.Fatalf("reference study should have results and constraint skips; got %d/%d",
			len(wantRes.Metrics), len(wantRes.Skipped))
	}

	for _, workers := range []int{1, 4} {
		cfg2, err := Parse(strings.NewReader(legacyConfig))
		if err != nil {
			t.Fatal(err)
		}
		cfg2.Workers = workers
		res, err := Run(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, gotND, gotCSV := render(res)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("workers=%d: JSON diverges from the legacy expansion (%d vs %d bytes)",
				workers, len(gotJSON), len(wantJSON))
		}
		if !bytes.Equal(wantND, gotND) {
			t.Errorf("workers=%d: NDJSON diverges from the legacy expansion", workers)
		}
		if !bytes.Equal(wantCSV, gotCSV) {
			t.Errorf("workers=%d: CSV diverges from the legacy expansion", workers)
		}
	}
}

// TestLegacyRowsHaveNoAxisFields pins the wire compatibility detail: rows
// of a legacy configuration must not grow the new axis/pareto JSON keys.
func TestLegacyRowsHaveNoAxisFields(t *testing.T) {
	cfg, err := Parse(strings.NewReader(dnnConfig))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var nd bytes.Buffer
	if err := WriteNDJSON(&nd, res); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(nd.String(), "\n"), "\n") {
		var raw map[string]any
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"word_bits", "write_buffer", "fault",
			"pareto", "frontier"} {
			if _, ok := raw[key]; ok {
				t.Fatalf("legacy row leaked new field %q: %s", key, line)
			}
		}
	}
	var body bytes.Buffer
	if err := WriteJSON(&body, res); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(body.String(), "frontier") {
		t.Error("legacy JSON body should have no frontier block")
	}
}

package core

import (
	"reflect"
	"testing"

	"repro/internal/cell"
	"repro/internal/eval"
	"repro/internal/nvsim"
	"repro/internal/traffic"
)

// TestSpaceLegacyOrder pins the enumeration order of a legacy-shaped study
// (no optional axes): cell-major, then capacity — exactly what Study.Run
// iterated before the DesignSpace refactor.
func TestSpaceLegacyOrder(t *testing.T) {
	s := NewStudy("order").
		AddTentpole(cell.STT, cell.Optimistic).
		AddTentpole(cell.FeFET, cell.Optimistic).
		AddCapacity(1<<20, 2<<20)
	specs, err := s.Space()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("grid = %d, want 4", len(specs))
	}
	wantCells := []string{"Opt. STT", "Opt. STT", "Opt. FeFET", "Opt. FeFET"}
	wantCaps := []int64{1 << 20, 2 << 20, 1 << 20, 2 << 20}
	for i, spec := range specs {
		if spec.Index != i {
			t.Errorf("specs[%d].Index = %d", i, spec.Index)
		}
		if spec.Cell.Name != wantCells[i] || spec.CapacityBytes != wantCaps[i] {
			t.Errorf("specs[%d] = (%s, %d), want (%s, %d)",
				i, spec.Cell.Name, spec.CapacityBytes, wantCells[i], wantCaps[i])
		}
		if spec.WordBits != 0 || spec.WriteBuffer != nil || spec.Fault != nil {
			t.Errorf("specs[%d] has non-default optional axes", i)
		}
	}
}

// TestBitsPerCellAxisMatchesCloning is the equivalence guarantee for the
// bits-per-cell axis: a study using the axis must produce results identical
// to the old sweep-side path that pre-cloned MLC variants of every cell
// into the Cells list (bits-major order, volatile cells SLC-only).
func TestBitsPerCellAxisMatchesCloning(t *testing.T) {
	pattern := traffic.Pattern{Name: "p", ReadsPerSec: 1e6, WritesPerSec: 1e4}

	axis := NewStudy("bpc").
		AddTentpole(cell.SRAM, cell.Reference).
		AddTentpole(cell.RRAM, cell.Optimistic).
		AddTentpole(cell.FeFET, cell.Optimistic).
		AddCapacity(1 << 20).
		AddPattern(pattern)
	axis.BitsPerCell = []int{1, 2}

	cloned := NewStudy("bpc").
		AddCapacity(1 << 20).
		AddPattern(pattern)
	// The historical expansion: for each bits value, clone every cell that
	// supports it, keeping bits-major order.
	for _, b := range []int{1, 2} {
		for _, base := range []cell.Definition{
			cell.MustTentpole(cell.SRAM, cell.Reference),
			cell.MustTentpole(cell.RRAM, cell.Optimistic),
			cell.MustTentpole(cell.FeFET, cell.Optimistic),
		} {
			md, err := cell.ToMLC(base, b)
			if err != nil {
				if b == 1 {
					t.Fatal(err)
				}
				continue
			}
			cloned.AddCell(md)
		}
	}

	wantGrid := len(cloned.Cells) // 3 SLC + 2 MLC
	specs, err := axis.Space()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != wantGrid {
		t.Fatalf("axis grid = %d, want %d", len(specs), wantGrid)
	}

	want, err := cloned.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := axis.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Arrays, got.Arrays) {
		t.Error("bits-per-cell axis Arrays diverge from the cell-cloning path")
	}
	if !reflect.DeepEqual(want.Metrics, got.Metrics) {
		t.Error("bits-per-cell axis Metrics diverge from the cell-cloning path")
	}
	if !reflect.DeepEqual(want.Skipped, got.Skipped) {
		t.Error("bits-per-cell axis Skipped diverge from the cell-cloning path")
	}
}

// TestMultiAxisSpace checks a four-axis cross product: grid size, innermost
// axis ordering, and per-point seed derivation for the fault axis.
func TestMultiAxisSpace(t *testing.T) {
	s := NewStudy("multi").
		AddTentpole(cell.RRAM, cell.Optimistic).
		AddCapacity(1<<20, 2<<20)
	s.BitsPerCell = []int{1, 2}
	s.WordBitsAxis = []int{256, 512}
	s.WriteBuffers = []*eval.WriteBufferConfig{nil, {TrafficReduction: 0.5}}
	s.Faults = []*eval.FaultConfig{{Mode: eval.FaultNone}, {Mode: eval.FaultSECDED, Seed: 100}}

	specs, err := s.Space()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 1 * 2 * 2 * 2 * 2 // bits x cells x caps x words x buffers x faults
	if len(specs) != want {
		t.Fatalf("grid = %d, want %d", len(specs), want)
	}
	// The fault axis is innermost: consecutive specs alternate modes.
	if specs[0].Fault.Mode != eval.FaultNone || specs[1].Fault.Mode != eval.FaultSECDED {
		t.Error("fault axis should vary fastest")
	}
	// Per-point seeds: base seed + point index, so distinct and reproducible.
	seen := map[int64]bool{}
	for _, spec := range specs {
		if spec.Fault.Mode != eval.FaultSECDED {
			continue
		}
		wantSeed := 100 + int64(spec.Index)
		if spec.Fault.Seed != wantSeed {
			t.Fatalf("spec %d fault seed = %d, want %d", spec.Index, spec.Fault.Seed, wantSeed)
		}
		if seen[spec.Fault.Seed] {
			t.Fatalf("duplicate fault seed %d", spec.Fault.Seed)
		}
		seen[spec.Fault.Seed] = true
	}
}

// TestMultiAxisRunDeterministic runs a multi-axis study (with a fault axis,
// whose injection probe is the only RNG in the pipeline) at several worker
// counts and requires identical results.
func TestMultiAxisRunDeterministic(t *testing.T) {
	build := func(workers int) *Study {
		s := NewStudy("det").
			AddTentpole(cell.RRAM, cell.Optimistic).
			AddTentpole(cell.FeFET, cell.Optimistic).
			AddCapacity(1 << 20).
			AddPattern(traffic.Pattern{Name: "p", ReadsPerSec: 1e6, WritesPerSec: 1e4})
		s.BitsPerCell = []int{1, 2}
		s.WriteBuffers = []*eval.WriteBufferConfig{nil, {MaskLatency: true, BufferLatencyNS: 2}}
		s.Faults = []*eval.FaultConfig{{Mode: eval.FaultRaw, Seed: 7}, {Mode: eval.FaultSECDED, Seed: 7}}
		s.Workers = workers
		return s
	}
	want, err := build(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		got, err := build(workers).Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Metrics, got.Metrics) {
			t.Fatalf("workers=%d: multi-axis metrics diverge from sequential", workers)
		}
	}
	// Fault summaries must actually be attached and seeded per point.
	sawFault := false
	for _, m := range want.Metrics {
		if m.Fault != nil {
			sawFault = true
			if m.Fault.RawBER <= 0 {
				t.Error("fault summary has non-positive raw BER")
			}
		}
	}
	if !sawFault {
		t.Fatal("no fault summaries on a fault-axis study")
	}
}

// TestSpaceErrors covers axis validation.
func TestSpaceErrors(t *testing.T) {
	base := func() *Study {
		return NewStudy("bad").
			AddTentpole(cell.RRAM, cell.Optimistic).
			AddCapacity(1 << 20).
			AddPattern(traffic.Pattern{Name: "p", ReadsPerSec: 1})
	}
	s := base()
	s.BitsPerCell = []int{5}
	if _, err := s.Space(); err == nil {
		t.Error("bits per cell 5 should error")
	}
	s = base()
	s.WordBitsAxis = []int{-1}
	if _, err := s.Space(); err == nil {
		t.Error("negative word bits should error")
	}
	s = base()
	s.WriteBuffers = []*eval.WriteBufferConfig{{TrafficReduction: 2}}
	if _, err := s.Space(); err == nil {
		t.Error("invalid write-buffer axis value should error")
	}
	s = base()
	s.Cells = []cell.Definition{cell.MustTentpole(cell.SRAM, cell.Reference)}
	s.BitsPerCell = []int{2}
	if _, err := s.Space(); err == nil {
		t.Error("an all-infeasible design space should error")
	}
	s = base()
	s.Pareto = []string{"vibes"}
	if _, err := s.Run(); err == nil {
		t.Error("unknown pareto metric should fail the run")
	}
}

// TestParetoFrontierSelection checks dominance, optimization sense, and
// validation of the frontier selection.
func TestParetoFrontierSelection(t *testing.T) {
	mk := func(power, memTime, lifetime float64) eval.Metrics {
		return eval.Metrics{TotalPowerMW: power, MemoryTimePerSec: memTime, LifetimeYears: lifetime}
	}
	r := &Results{Study: NewStudy("p"), Metrics: []eval.Metrics{
		mk(1, 5, 10),  // frontier (best power)
		mk(2, 2, 10),  // frontier (trade-off)
		mk(3, 2, 10),  // dominated by [1]
		mk(5, 1, 10),  // frontier (best latency; ties [5] on these metrics)
		mk(5, 5, 10),  // dominated by everything
		mk(5, 1, 100), // ties [3] on power/latency, wins on lifetime
	}}
	// Ties survive: rows 3 and 5 are identical on the selected metrics, so
	// neither dominates the other and both stay.
	front, err := r.ParetoFrontier([]string{"total_power_mw", "mem_time_per_sec"})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 3, 5}; !reflect.DeepEqual(front, want) {
		t.Errorf("2-metric frontier = %v, want %v", front, want)
	}
	// Adding the maximized lifetime metric breaks the tie: row 5 now
	// strictly dominates row 3.
	front, err = r.ParetoFrontier([]string{"total_power_mw", "mem_time_per_sec", "lifetime_years"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(front, []int{0, 1, 5}) {
		t.Errorf("3-metric frontier = %v, want [0 1 5]", front)
	}

	if _, err := r.ParetoFrontier(nil); err == nil {
		t.Error("empty metric list should error")
	}
	if _, err := r.ParetoFrontier([]string{"nope"}); err == nil {
		t.Error("unknown metric should error")
	}
	if _, err := r.ParetoFrontier([]string{"area_mm2", "area_mm2"}); err == nil {
		t.Error("duplicate metric should error")
	}

	// SelectPareto stores the frontier; scatters pick it up as emphasis.
	if _, err := r.SelectPareto("total_power_mw", "mem_time_per_sec"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Frontier, []int{0, 1, 3, 5}) {
		t.Errorf("stored frontier = %v", r.Frontier)
	}
}

// TestStudyRunParetoEndToEnd runs a real study with a Pareto declaration
// and checks the frontier is computed, sane, and highlighted.
func TestStudyRunParetoEndToEnd(t *testing.T) {
	s := NewStudy("pareto").
		AddCaseStudyCells().
		AddCapacity(1 << 20).
		AddPattern(traffic.Pattern{Name: "p", ReadsPerSec: 1e6, WritesPerSec: 1e4})
	s.Pareto = []string{"total_power_mw", "mem_time_per_sec"}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.EnsureFrontier(); err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 || len(res.Frontier) > len(res.Metrics) {
		t.Fatalf("frontier size %d of %d", len(res.Frontier), len(res.Metrics))
	}
	// Every non-frontier point must be dominated by some frontier point.
	front := res.frontierSet()
	for i, m := range res.Metrics {
		if front[i] {
			continue
		}
		dominated := false
		for _, j := range res.Frontier {
			f := res.Metrics[j]
			if f.TotalPowerMW <= m.TotalPowerMW && f.MemoryTimePerSec <= m.MemoryTimePerSec &&
				(f.TotalPowerMW < m.TotalPowerMW || f.MemoryTimePerSec < m.MemoryTimePerSec) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("non-frontier point %d is not dominated", i)
		}
	}
	// The scatter view emphasizes exactly the frontier points.
	emph := 0
	for _, ser := range res.PowerScatter().Series {
		for _, p := range ser.Points {
			if p.Emph {
				emph++
			}
		}
	}
	if emph != len(res.Frontier) {
		t.Errorf("scatter emphasizes %d points, frontier has %d", emph, len(res.Frontier))
	}
}

// TestRunBatchesTargetsStillOnePassPerSpec re-checks the memo contract
// under the PointSpec refactor: a T-target study still records exactly one
// engine evaluation per design point.
func TestRunBatchesTargetsStillOnePassPerSpec(t *testing.T) {
	nvsim.ResetMemo()
	s := NewStudy("memo-spec")
	s.AddTentpole(cell.RRAM, cell.Optimistic)
	s.AddCapacity(1 << 20)
	s.BitsPerCell = []int{1, 2}
	s.AddTarget(nvsim.OptReadLatency, nvsim.OptArea)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, misses := nvsim.MemoStats(); misses != 2 {
		t.Errorf("misses = %d, want 2 (one per (cell, bits) spec)", misses)
	}
}

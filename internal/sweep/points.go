package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/viz"
)

// DesignPoint is one evaluated (array, traffic) pair flattened into the
// row shape the per-technology CSVs use — the unit of the study service's
// JSON and NDJSON responses. Field order matches the CSV column order.
type DesignPoint struct {
	Cell          string `json:"cell"`
	Technology    string `json:"technology"`
	BitsPerCell   int    `json:"bits_per_cell"`
	CapacityBytes int64  `json:"capacity_bytes"`
	OptTarget     string `json:"opt_target"`
	Pattern       string `json:"pattern"`

	ReadLatencyNS   Float `json:"read_latency_ns"`
	WriteLatencyNS  Float `json:"write_latency_ns"`
	ReadEnergyPJ    Float `json:"read_energy_pj"`
	WriteEnergyPJ   Float `json:"write_energy_pj"`
	LeakagePowerMW  Float `json:"leakage_power_mw"`
	AreaMM2         Float `json:"area_mm2"`
	AreaEfficiency  Float `json:"area_efficiency"`
	DensityMbPerMM2 Float `json:"density_mb_per_mm2"`

	TotalPowerMW   Float `json:"total_power_mw"`
	DynamicPowerMW Float `json:"dynamic_power_mw"`
	MemTimePerSec  Float `json:"mem_time_per_sec"`
	TaskLatencyS   Float `json:"task_latency_s"`
	MeetsTaskRate  bool  `json:"meets_task_rate"`
	LifetimeYears  Float `json:"lifetime_years"`
}

// Float marshals like float64 but encodes non-finite values (an
// endurance-unlimited lifetime is +Inf) as null, which plain float64
// rejects outright.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, mapping null back to +Inf.
func (f *Float) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = Float(math.Inf(1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Point flattens one evaluation into its row form.
func Point(m eval.Metrics) DesignPoint {
	a := m.Array
	return DesignPoint{
		Cell:            a.Cell.Name,
		Technology:      a.Cell.Tech.String(),
		BitsPerCell:     a.Cell.BitsPerCell,
		CapacityBytes:   a.CapacityBytes,
		OptTarget:       a.Target.String(),
		Pattern:         m.Pattern.Name,
		ReadLatencyNS:   Float(a.ReadLatencyNS),
		WriteLatencyNS:  Float(a.WriteLatencyNS),
		ReadEnergyPJ:    Float(a.ReadEnergyPJ),
		WriteEnergyPJ:   Float(a.WriteEnergyPJ),
		LeakagePowerMW:  Float(a.LeakagePowerMW),
		AreaMM2:         Float(a.AreaMM2),
		AreaEfficiency:  Float(a.AreaEfficiency),
		DensityMbPerMM2: Float(a.DensityMbPerMM2()),
		TotalPowerMW:    Float(m.TotalPowerMW),
		DynamicPowerMW:  Float(m.DynamicPowerMW),
		MemTimePerSec:   Float(m.MemoryTimePerSec),
		TaskLatencyS:    Float(m.TaskLatencyS),
		MeetsTaskRate:   m.MeetsTaskRate,
		LifetimeYears:   Float(m.LifetimeYears),
	}
}

// Points flattens a completed study into rows, in Results order.
func Points(res *core.Results) []DesignPoint {
	out := make([]DesignPoint, 0, len(res.Metrics))
	for _, m := range res.Metrics {
		out = append(out, Point(m))
	}
	return out
}

// StudyResult is the JSON body of a completed study — what
// `nvmexplorer run -format json` prints and what the study service
// returns from POST /v1/studies.
type StudyResult struct {
	Name    string        `json:"name"`
	Points  []DesignPoint `json:"points"`
	Skipped []string      `json:"skipped,omitempty"`
}

// Result converts a completed study into its JSON body form.
func Result(res *core.Results) StudyResult {
	return StudyResult{Name: res.Study.Name, Points: Points(res), Skipped: res.Skipped}
}

// WriteJSON writes the study's JSON body (indented, trailing newline) to w.
// The encoding is deterministic, so any two runs of the same configuration
// produce byte-identical output regardless of worker count or caching.
func WriteJSON(w io.Writer, res *core.Results) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Result(res))
}

// WriteNDJSON writes one DesignPoint JSON object per line to w, in Results
// order — the batch form of the study service's streamed NDJSON response.
func WriteNDJSON(w io.Writer, res *core.Results) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, m := range res.Metrics {
		if err := enc.Encode(Point(m)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCombinedCSV writes every per-technology table that WriteCSVs would
// emit as files into a single stream, in first-appearance technology order
// with a blank line between tables.
func WriteCombinedCSV(w io.Writer, res *core.Results) error {
	tables, order := techTables(res)
	for i, techName := range order {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := tables[techName].WriteCSV(w); err != nil {
			return fmt.Errorf("sweep: writing %s table: %w", techName, err)
		}
	}
	return nil
}

// techTables partitions the metrics into one table per technology,
// preserving first-appearance order — shared by WriteCSVs (files) and
// WriteCombinedCSV (single stream).
func techTables(res *core.Results) (map[string]*viz.Table, []string) {
	perTech := map[string]*viz.Table{}
	var order []string
	for _, m := range res.Metrics {
		techName := m.Array.Cell.Tech.String()
		t, ok := perTech[techName]
		if !ok {
			t = viz.NewTable(techName,
				"Cell", "BitsPerCell", "CapacityBytes", "OptTarget", "Pattern",
				"ReadLatencyNS", "WriteLatencyNS", "ReadEnergyPJ", "WriteEnergyPJ",
				"LeakagePowerMW", "AreaMM2", "AreaEfficiency", "DensityMbPerMM2",
				"TotalPowerMW", "DynamicPowerMW", "MemTimePerSec", "TaskLatencyS",
				"MeetsTaskRate", "LifetimeYears")
			perTech[techName] = t
			order = append(order, techName)
		}
		a := m.Array
		t.MustAddRow(a.Cell.Name, fmt.Sprintf("%d", a.Cell.BitsPerCell),
			fmt.Sprintf("%d", a.CapacityBytes), a.Target.String(), m.Pattern.Name,
			a.ReadLatencyNS, a.WriteLatencyNS, a.ReadEnergyPJ, a.WriteEnergyPJ,
			a.LeakagePowerMW, a.AreaMM2, a.AreaEfficiency, a.DensityMbPerMM2(),
			m.TotalPowerMW, m.DynamicPowerMW, m.MemoryTimePerSec, m.TaskLatencyS,
			fmt.Sprintf("%v", m.MeetsTaskRate), m.LifetimeYears)
	}
	return perTech, order
}

// Fault-injection study (paper Sections II-B2 and V-C): train a classifier,
// quantize it to int8, store its weights in modeled eNVM cells, inject
// storage bit errors at each cell configuration's modeled BER, and measure
// the surviving inference accuracy — the density-vs-reliability trade-off
// of Figure 13, end to end.
//
//	go run ./examples/fault_study
package main

import (
	"fmt"
	"log"

	nvmexplorer "repro"
	"repro/internal/cell"
	"repro/internal/fault"
	"repro/internal/nn"
)

func main() {
	_, q, test, err := nn.ReferenceClassifier()
	if err != nil {
		log.Fatal(err)
	}
	clean := q.Accuracy(test)
	fmt.Printf("trained classifier: %d weight bytes, clean accuracy %.3f\n\n",
		q.TotalWeightBytes(), clean)

	configs := []struct {
		label string
		def   cell.Definition
	}{
		{"SLC RRAM", cell.MustTentpole(cell.RRAM, cell.Optimistic)},
		{"2-bit MLC RRAM", cell.MustToMLC(cell.MustTentpole(cell.RRAM, cell.Optimistic), 2)},
		{"SLC FeFET (4F²)", cell.MustTentpole(cell.FeFET, cell.Optimistic)},
		{"2-bit MLC FeFET (4F²)", cell.MustToMLC(cell.MustTentpole(cell.FeFET, cell.Optimistic), 2)},
		{"2-bit MLC FeFET (103F²)", cell.MustToMLC(cell.MustTentpole(cell.FeFET, cell.Pessimistic), 2)},
		{"2-bit MLC CTT", cell.MustToMLC(cell.MustTentpole(cell.CTT, cell.Optimistic), 2)},
	}

	fmt.Printf("%-26s %-10s %-10s %-10s %s\n", "configuration", "BER", "accuracy", "density", "verdict")
	for _, cfg := range configs {
		model := fault.Model{Cell: cfg.def}
		var working *nn.QuantizedMLP
		acc, err := fault.AccuracyUnderFaults(model,
			fault.TrialConfig{Trials: 10, Seed: 1},
			func() [][]byte {
				working = q.Clone()
				bufs := make([][]byte, len(working.Layers))
				for i := range working.Layers {
					bufs[i] = working.WeightBytes(i)
				}
				return bufs
			},
			func() float64 { return working.Accuracy(test) })
		if err != nil {
			log.Fatal(err)
		}
		arr, err := nvmexplorer.Characterize(nvmexplorer.ArrayConfig{
			Cell: cfg.def, CapacityBytes: 8 << 20, Target: nvmexplorer.OptReadEDP})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "acceptable"
		if clean-acc > 0.02 {
			verdict = "FAILS accuracy target"
		}
		fmt.Printf("%-26s %-10.3g %-10.3f %7.0f Mb/mm²  %s\n",
			cfg.label, model.BER(), acc, arr.DensityMbPerMM2(), verdict)
	}
	fmt.Println("\nMLC RRAM doubles density and stays accurate; MLC FeFET is only")
	fmt.Println("reliable at large cell sizes — small FeFETs are too variable to")
	fmt.Println("program into four levels (paper Fig 13).")
}

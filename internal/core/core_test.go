package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/eval"
	"repro/internal/nvsim"
	"repro/internal/traffic"
)

func demoStudy() *Study {
	return NewStudy("demo").
		AddTentpole(cell.STT, cell.Optimistic).
		AddTentpole(cell.FeFET, cell.Optimistic).
		AddCapacity(1 << 20).
		AddTarget(nvsim.OptReadEDP).
		AddPattern(traffic.Pattern{Name: "p1", ReadsPerSec: 1e6, WritesPerSec: 1e4})
}

func TestStudyRun(t *testing.T) {
	res, err := demoStudy().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arrays) != 2 {
		t.Fatalf("arrays = %d, want 2", len(res.Arrays))
	}
	if len(res.Metrics) != 2 {
		t.Fatalf("metrics = %d, want 2", len(res.Metrics))
	}
	if len(res.Skipped) != 0 {
		t.Errorf("unexpected skips: %v", res.Skipped)
	}
}

func TestStudyValidation(t *testing.T) {
	if _, err := NewStudy("empty").Run(); err == nil {
		t.Error("study without cells should error")
	}
	s := NewStudy("nocap").AddTentpole(cell.STT, cell.Optimistic)
	if _, err := s.Run(); err == nil {
		t.Error("study without capacities should error")
	}
}

func TestStudyDefaultTarget(t *testing.T) {
	s := NewStudy("default").
		AddTentpole(cell.STT, cell.Optimistic).
		AddCapacity(1 << 20)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrays[0].Target != nvsim.OptReadEDP {
		t.Error("default optimization target should be ReadEDP")
	}
}

func TestStudySkipsInfeasible(t *testing.T) {
	s := NewStudy("tight").
		AddTentpole(cell.SRAM, cell.Reference).
		AddTentpole(cell.FeFET, cell.Optimistic).
		AddCapacity(8 << 20)
	s.MaxAreaMM2 = 0.5 // SRAM cannot fit 8MB in half a mm²; FeFET can
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skipped) == 0 {
		t.Error("SRAM should have been skipped under the area budget")
	}
	for _, a := range res.Arrays {
		if a.Cell.Tech == cell.SRAM {
			t.Error("SRAM should not appear under a 0.5mm² budget at 8MB")
		}
	}
}

func TestStudyAllInfeasible(t *testing.T) {
	s := NewStudy("impossible").
		AddTentpole(cell.SRAM, cell.Reference).
		AddCapacity(16 << 20)
	s.MaxAreaMM2 = 0.001
	if _, err := s.Run(); err == nil {
		t.Error("study with no feasible arrays should error")
	}
}

func TestFeasibleAndFilters(t *testing.T) {
	s := NewStudy("filter").
		AddTentpole(cell.STT, cell.Optimistic).
		AddTentpole(cell.PCM, cell.Pessimistic).
		AddCapacity(2 << 20).
		AddPattern(traffic.Pattern{Name: "wr", WritesPerSec: 1e5})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	feasible := res.Feasible()
	for _, m := range feasible {
		if m.Array.Cell.Tech == cell.PCM {
			t.Error("pessimistic PCM cannot sustain 1e5 writes/s (30µs writes)")
		}
	}
	if len(feasible) == 0 {
		t.Error("STT should be feasible")
	}
	stt := res.Filter(func(m eval.Metrics) bool { return m.Array.Cell.Tech == cell.STT })
	if len(stt) != 1 {
		t.Errorf("filter returned %d, want 1", len(stt))
	}
}

func TestBestBy(t *testing.T) {
	res, err := demoStudy().Run()
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.BestBy(func(m eval.Metrics) float64 { return m.TotalPowerMW }, nil)
	if !ok {
		t.Fatal("no best found")
	}
	for _, m := range res.Metrics {
		if m.TotalPowerMW < best.TotalPowerMW {
			t.Error("BestBy did not minimize")
		}
	}
	_, ok = res.BestBy(func(m eval.Metrics) float64 { return 0 },
		func(m eval.Metrics) bool { return false })
	if ok {
		t.Error("empty predicate set should report not-found")
	}
}

func TestTablesAndScatters(t *testing.T) {
	res, err := demoStudy().Run()
	if err != nil {
		t.Fatal(err)
	}
	at := res.ArrayTable()
	if len(at.Rows) != len(res.Arrays) {
		t.Error("array table row count mismatch")
	}
	mt := res.MetricsTable()
	if len(mt.Rows) != len(res.Metrics) {
		t.Error("metrics table row count mismatch")
	}
	if !strings.Contains(at.String(), "Opt. STT") {
		t.Error("array table missing cells")
	}
	for _, sc := range []interface{ Render(int, int) string }{
		res.PowerScatter(), res.LatencyScatter(),
	} {
		if out := sc.Render(40, 10); strings.Contains(out, "no plottable") {
			t.Error("study scatters should have points")
		}
	}
	// Lifetime scatter drops infinite lifetimes (no writes => Inf).
	res2, err := NewStudy("nolifetime").
		AddTentpole(cell.STT, cell.Optimistic).
		AddCapacity(1 << 20).
		AddPattern(traffic.Pattern{Name: "ro", ReadsPerSec: 1e6}).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.LifetimeScatter(); len(got.Series) != 0 {
		for _, s := range got.Series {
			for _, p := range s.Points {
				if math.IsInf(p.Y, 1) {
					t.Error("lifetime scatter must drop infinite points")
				}
			}
		}
	}
}

func TestMultiCapacityMultiTarget(t *testing.T) {
	s := NewStudy("grid").
		AddTentpole(cell.RRAM, cell.Optimistic).
		AddCapacity(1<<20, 2<<20).
		AddTarget(nvsim.OptReadEDP, nvsim.OptArea)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arrays) != 4 {
		t.Fatalf("arrays = %d, want 2 capacities x 2 targets = 4", len(res.Arrays))
	}
}

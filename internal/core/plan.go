package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cell"
	"repro/internal/nvsim"
)

// The execution plan. A study grid often contains many PointSpecs that
// share one characterization: write-buffer and fault axes change only how a
// point is *evaluated*, never the (cell, capacity, word width) the engine
// characterizes. RunStream therefore splits a run into two phases. The plan
// phase dedupes the grid's unique characterization configs, probes the
// point cache, and characterizes each needed config exactly once per run —
// in parallel across the study's workers — into a local plan table: the
// global memo/singleflight mutex is touched once per unique config instead
// of once per point, and selectBest runs once per (config, target) instead
// of once per (point, target). The evaluation phase then walks the grid in
// declaration order, replaying cached points and driving eval.EvaluateBatch
// over the plan table into preallocated result buffers, emitting each point
// as it completes. Output is byte-identical to the previous point-at-a-time
// execution at any worker count.

// testHookCharacterize, when non-nil, runs just before each config's
// characterization, inside the plan phase's panic guard. Fault-isolation
// tests install a panicking hook to simulate an engine crash on a chosen
// config (set before the run starts, so the write happens-before every
// worker read).
var testHookCharacterize func(cfg nvsim.Config)

// charKey identifies one unique characterization within a study: every
// PointSpec coordinate the engine sees. Constraints are study-wide, so they
// need no per-config key fields.
type charKey struct {
	cell          cell.Definition
	capacityBytes int64
	wordBits      int
}

// planConfig is one unique characterization in the plan table.
type planConfig struct {
	// needed is set when at least one cache-missing point requires this
	// config; unneeded configs (fully cache-hit) are never characterized,
	// preserving the warm store's zero-characterization guarantee.
	needed bool
	// arrays and errs are parallel to the study's targets, as returned by
	// nvsim.CharacterizeTargets.
	arrays []nvsim.Result
	errs   []error
	// skipped holds the rendered skip lines of the failed targets, in
	// target order; every point sharing the config reports the same lines.
	skipped []string
	// ok counts successful targets, sizing the evaluation-phase buffers.
	ok int
	// failed holds a recovered characterization panic. A panicking engine
	// poisons only the points sharing this config — they are reported in
	// Results.FailedPoints — while the rest of the grid completes.
	failed error
	// prefiltered is set when the cheap constraint bound proved the config
	// infeasible and the engine pass was skipped (nvsim.PrefilterTargets).
	// The per-target errors — and therefore every output byte — are
	// identical to what the engine would have reported.
	prefiltered bool
}

// execPlan is the planned form of one study run.
type execPlan struct {
	specs   []PointSpec
	cfgOf   []int        // spec index -> plan table index
	configs []planConfig // the plan table, in first-use order
	reps    []int        // plan table index -> representative spec index

	// Cache probe results, present only when the study has a point cache.
	keys   []string
	cached []CachedPoint
	hit    []bool
}

// totals sizes the evaluation phase's result buffers exactly: arrays and
// metrics per point are known once the plan table is characterized.
func (p *execPlan) totals(patterns int) (arrays, metrics int) {
	for i := range p.specs {
		if p.hit != nil && p.hit[i] {
			arrays += len(p.cached[i].Arrays)
			metrics += len(p.cached[i].Metrics)
			continue
		}
		ok := p.configs[p.cfgOf[i]].ok
		arrays += ok
		metrics += ok * patterns
	}
	return arrays, metrics
}

// cachePutter drains point-cache fills on a background goroutine so a
// disk-backed store's per-point gob encode + atomic rename overlaps with
// the evaluation pass instead of stalling the emit loop. wait blocks until
// every queued fill has landed, so store durability is unchanged: by the
// time RunStream returns, all computed points are stored.
type cachePutter struct {
	ch   chan cachePut
	done chan struct{}
}

type cachePut struct {
	key string
	pt  CachedPoint
}

// startCachePutter returns a putter for the cache; a nil cache yields an
// inert putter whose methods are no-ops.
func startCachePutter(cache PointCache) *cachePutter {
	if cache == nil {
		return &cachePutter{}
	}
	p := &cachePutter{ch: make(chan cachePut, 64), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		for cp := range p.ch {
			cache.Put(cp.key, cp.pt)
		}
	}()
	return p
}

func (p *cachePutter) put(key string, pt CachedPoint) {
	if p.ch != nil {
		p.ch <- cachePut{key: key, pt: pt}
	}
}

// wait flushes the queue and stops the putter. It is idempotent.
func (p *cachePutter) wait() {
	if p.ch != nil {
		close(p.ch)
		<-p.done
		p.ch = nil
	}
}

// parallelIndex runs f(0..n-1) across at most workers goroutines, stopping
// early (without running every index) once ctx is canceled. Each index runs
// exactly once; f must only touch index-disjoint state.
func parallelIndex(ctx context.Context, workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// plan builds the execution plan for one run: dedupe unique configs, probe
// the point cache, and characterize every needed config once. Only context
// cancellation fails the plan — characterization errors become per-point
// skips, exactly as the point-at-a-time path reported them.
func (s *Study) plan(ctx context.Context, specs []PointSpec, workers int) (*execPlan, error) {
	p := &execPlan{specs: specs, cfgOf: make([]int, len(specs))}
	idx := make(map[charKey]int, len(specs))
	for i := range specs {
		k := charKey{specs[i].Cell, specs[i].CapacityBytes, specs[i].WordBits}
		ci, ok := idx[k]
		if !ok {
			ci = len(p.reps)
			idx[k] = ci
			p.reps = append(p.reps, i)
		}
		p.cfgOf[i] = ci
	}
	p.configs = make([]planConfig, len(p.reps))

	if s.Cache != nil {
		p.keys = make([]string, len(specs))
		p.cached = make([]CachedPoint, len(specs))
		p.hit = make([]bool, len(specs))
		parallelIndex(ctx, workers, len(specs), func(i int) {
			p.keys[i] = s.PointKey(specs[i])
			p.cached[i], p.hit[i] = s.Cache.Get(p.keys[i])
		})
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: study %q canceled: %w", s.Name, err)
		}
	}

	// A config is characterized only when some cache-missing point needs it.
	var needed []int
	for i := range specs {
		if p.hit != nil && p.hit[i] {
			continue
		}
		if ci := p.cfgOf[i]; !p.configs[ci].needed {
			p.configs[ci].needed = true
			needed = append(needed, ci)
		}
	}
	parallelIndex(ctx, workers, len(needed), func(n int) {
		ci := needed[n]
		spec := &specs[p.reps[ci]]
		pc := &p.configs[ci]
		// A panicking characterization must not take down the run (or the
		// worker pool): it is recovered here and poisons only this config's
		// points, which the evaluation phase reports as failed.
		func() {
			defer func() {
				if r := recover(); r != nil {
					pc.failed = fmt.Errorf("characterization panic: %v", r)
				}
			}()
			cfg := nvsim.Config{
				Cell:             spec.Cell,
				CapacityBytes:    spec.CapacityBytes,
				WordBits:         spec.WordBits,
				MaxAreaMM2:       s.MaxAreaMM2,
				MaxReadLatencyNS: s.MaxReadLatencyNS,
			}
			if h := testHookCharacterize; h != nil {
				h(cfg)
			}
			// The cheap constraint bound first: a config whose bare cell
			// matrix already exceeds the area budget is provably infeasible,
			// and the engine pass is skipped entirely. The pre-filter
			// reproduces the engine's exact per-target errors, so skip lines
			// — and every other output byte — are unchanged.
			if arrays, errs, pruned := nvsim.PrefilterTargets(cfg, s.Targets); pruned {
				pc.arrays, pc.errs = arrays, errs
				pc.prefiltered = true
				return
			}
			pc.arrays, pc.errs = nvsim.CharacterizeTargets(cfg, s.Targets)
		}()
		if pc.failed != nil {
			return
		}
		for t, target := range s.Targets {
			if pc.errs[t] != nil {
				pc.skipped = append(pc.skipped, fmt.Sprintf("%s@%d/%s: %v",
					spec.Cell.Name, spec.CapacityBytes, target, pc.errs[t]))
				continue
			}
			pc.ok++
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: study %q canceled: %w", s.Name, err)
	}
	return p, nil
}

package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	path := writeBench(t, "bench.txt", `goos: linux
BenchmarkCharacterize2MBSTT-8   	    1000	   1234.5 ns/op	      12 B/op	       3 allocs/op
BenchmarkCharacterize2MBSTT-8   	    1200	   1100.0 ns/op
BenchmarkStudyPipeline-8        	      10	 99999 ns/op
BenchmarkFig1PublicationSurvey  	       5	   500 ns/op
PASS
ok  	repro	1.234s
`)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// Duplicate samples keep the fastest.
	if got["BenchmarkCharacterize2MBSTT"] != 1100.0 {
		t.Errorf("min-aggregation failed: %v", got["BenchmarkCharacterize2MBSTT"])
	}
	// No -N suffix also parses.
	if got["BenchmarkFig1PublicationSurvey"] != 500 {
		t.Errorf("suffix-free benchmark: %v", got["BenchmarkFig1PublicationSurvey"])
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{
		"BenchmarkCharacterize2MBSTT": 1000,
		"BenchmarkStudyPipeline":      2000,
		"BenchmarkFaultInjection":     100, // not gated by the match
		"BenchmarkRetired":            50,  // absent from current
	}
	cur := map[string]float64{
		"BenchmarkCharacterize2MBSTT": 1150, // +15%: within threshold
		"BenchmarkStudyPipeline":      2600, // +30%: regression
		"BenchmarkFaultInjection":     900,  // 9x, but outside the gate
		"BenchmarkBrandNew":           10,
	}
	gate := regexp.MustCompile(`Characterize|StudyPipeline`)
	regs := compare(base, cur, gate, 1.20)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly StudyPipeline", regs)
	}
	if regs[0].name != "BenchmarkStudyPipeline" || regs[0].ratio != 1.3 {
		t.Errorf("regression = %+v", regs[0])
	}
	if regs := compare(base, cur, gate, 1.50); len(regs) != 0 {
		t.Errorf("loose threshold should pass, got %+v", regs)
	}
}

func TestGateExitCodes(t *testing.T) {
	const fast = "BenchmarkStudyPipeline-8  10  1000 ns/op\n"
	const slow = "BenchmarkStudyPipeline-8  10  2000 ns/op\n"
	baseline := writeBench(t, "base.txt", fast)
	within := writeBench(t, "within.txt", fast)
	regressed := writeBench(t, "regressed.txt", slow)
	missing := filepath.Join(t.TempDir(), "does-not-exist.txt")

	cases := []struct {
		name          string
		baseline, cur string
		threshold     float64
		want          int
	}{
		{"within threshold", baseline, within, 1.20, 0},
		{"regression", baseline, regressed, 1.20, 1},
		// The first run on a fork/branch has no artifact to compare
		// against; the gate must degrade gracefully, not fail.
		{"missing baseline skips gate", missing, within, 1.20, 0},
		{"missing current is an error", baseline, missing, 1.20, 2},
		{"missing flags are an error", "", within, 1.20, 2},
		{"empty baseline gates nothing", writeBench(t, "empty.txt", "PASS\n"), within, 1.20, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := gate(tc.baseline, tc.cur, tc.threshold, "StudyPipeline"); got != tc.want {
				t.Errorf("gate() = %d, want %d", got, tc.want)
			}
		})
	}
}

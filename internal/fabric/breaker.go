package fabric

import (
	"math/rand"
	"sync"
	"time"
)

// Per-worker circuit breaker. The bare alive flag the pool used to carry
// collapsed two different facts — "this worker failed once" and "this
// worker is worth trying again" — into one bit, so a flapping worker was
// re-probed at full price on every prefill. The breaker separates them
// with the classic three states:
//
//	closed    the worker is usable: shards route to it.
//	open      the worker recently failed: nothing routes to it until
//	          retryAt, which backs off exponentially (seeded jitter, so a
//	          fleet of coordinators doesn't re-probe in lockstep, and a
//	          test with a fixed seed replays the exact same schedule).
//	half-open one probe (the /v1/version re-handshake) is in flight; its
//	          outcome closes the breaker or re-opens it with a longer
//	          backoff.
//
// Workers start open with a zero retryAt — "unproven, probe on first
// use" — which preserves the old pool's handshake-gated ring exactly.
type breakerState int

const (
	bkOpen breakerState = iota // zero value: unproven until a handshake
	bkClosed
	bkHalfOpen
)

// breakerConfig is the tuning shared by every breaker in a pool.
type breakerConfig struct {
	threshold  int           // consecutive failures that trip a closed breaker
	backoff    time.Duration // first open interval
	maxBackoff time.Duration // backoff ceiling
}

type breaker struct {
	mu       sync.Mutex
	cfg      breakerConfig
	rng      *rand.Rand // per-worker, deterministically seeded
	state    breakerState
	failures int           // consecutive failures while closed
	next     time.Duration // the open interval the next trip will use
	retryAt  time.Time     // when an open breaker accepts a probe
}

func newBreaker(cfg breakerConfig, seed int64) *breaker {
	return &breaker{cfg: cfg, rng: rand.New(rand.NewSource(seed)), next: cfg.backoff}
}

// usable reports whether shards may route to this worker right now.
func (b *breaker) usable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == bkClosed
}

// allowProbe reports whether a re-handshake probe should go out now, and
// if so moves the breaker to half-open so concurrent refreshes send one
// probe, not a thundering herd.
func (b *breaker) allowProbe(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != bkOpen || now.Before(b.retryAt) {
		return false
	}
	b.state = bkHalfOpen
	return true
}

// onSuccess records a successful operation (a passed handshake or a
// served shard), closing the breaker and resetting the backoff schedule.
// It reports whether this was a reset — a transition from open/half-open
// back to closed.
func (b *breaker) onSuccess() (reset bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	reset = b.state != bkClosed
	b.state = bkClosed
	b.failures = 0
	b.next = b.cfg.backoff
	return reset
}

// onFailure records a failed operation. A closed breaker trips once the
// consecutive-failure count reaches the threshold; a half-open breaker
// re-trips immediately with a doubled backoff. It reports whether the
// breaker tripped (transitioned to open) on this call.
func (b *breaker) onFailure(now time.Time) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		b.failures++
		if b.failures < b.cfg.threshold {
			return false
		}
	case bkOpen:
		return false // already open; concurrent failures don't extend the window
	}
	b.trip(now)
	return true
}

// forceOpen trips the breaker with an immediate retry window — the old
// markDead semantics: out of the ring now, revivable by the very next
// handshake.
func (b *breaker) forceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = bkOpen
	b.failures = 0
	b.retryAt = time.Time{}
}

// trip opens the breaker (mu held): the retry window is the current
// backoff interval with 50–100% seeded jitter, and the next interval
// doubles up to the ceiling.
func (b *breaker) trip(now time.Time) {
	b.state = bkOpen
	b.failures = 0
	d := b.next
	if d > 0 {
		d = time.Duration(float64(d) * (0.5 + 0.5*b.rng.Float64()))
	}
	b.retryAt = now.Add(d)
	b.next *= 2
	if b.next > b.cfg.maxBackoff {
		b.next = b.cfg.maxBackoff
	}
}

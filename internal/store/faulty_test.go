package store

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// The fault-injection filesystem. faultyFS wraps a real FS and fails or
// corrupts operations at configured rates from a deterministically seeded
// PRNG, so chaos tests replay the exact same fault schedule on every run.

var errInjected = errors.New("injected I/O fault")

type faultyFS struct {
	inner FS

	mu  sync.Mutex
	rng *rand.Rand

	failReads     float64 // P(ReadFile returns an I/O error)
	failWrites    float64 // P(WriteFileAtomic / Append fails)
	corruptWrites float64 // P(WriteFileAtomic lands flipped bytes)

	injectedReads, injectedWrites, corrupted int
}

func newFaultyFS(seed int64, failReads, failWrites, corruptWrites float64) *faultyFS {
	return &faultyFS{
		inner: DiskFS, rng: rand.New(rand.NewSource(seed)),
		failReads: failReads, failWrites: failWrites, corruptWrites: corruptWrites,
	}
}

// roll draws one fault decision under the lock (rand.Rand is not
// concurrency-safe and the store writes from multiple goroutines).
func (f *faultyFS) roll(p float64, counter *int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p > 0 && f.rng.Float64() < p {
		*counter++
		return true
	}
	return false
}

func (f *faultyFS) MkdirAll(path string) error { return f.inner.MkdirAll(path) }

func (f *faultyFS) ReadFile(path string) ([]byte, error) {
	if f.roll(f.failReads, &f.injectedReads) {
		return nil, fmt.Errorf("%w: read %s", errInjected, path)
	}
	return f.inner.ReadFile(path)
}

func (f *faultyFS) WriteFileAtomic(path string, data []byte) error {
	if f.roll(f.failWrites, &f.injectedWrites) {
		return fmt.Errorf("%w: write %s", errInjected, path)
	}
	if f.roll(f.corruptWrites, &f.corrupted) {
		bad := append([]byte(nil), data...)
		for i := 0; i < len(bad); i += 37 {
			bad[i] ^= 0xA5
		}
		return f.inner.WriteFileAtomic(path, bad)
	}
	return f.inner.WriteFileAtomic(path, data)
}

func (f *faultyFS) Append(path string, data []byte) error {
	if f.roll(f.failWrites, &f.injectedWrites) {
		return fmt.Errorf("%w: append %s", errInjected, path)
	}
	return f.inner.Append(path, data)
}

func (f *faultyFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }
func (f *faultyFS) Remove(path string) error             { return f.inner.Remove(path) }
func (f *faultyFS) ReadDir(path string) ([]fs.DirEntry, error) {
	return f.inner.ReadDir(path)
}

// shrinkBackoff makes retry waits negligible for the duration of a test.
func shrinkBackoff(t *testing.T) {
	t.Helper()
	old := ioBackoff
	ioBackoff = time.Microsecond
	t.Cleanup(func() { ioBackoff = old })
}

// countdownFS fails the first n write operations, then behaves normally —
// the shape of a transient stall (a full page cache, a blip in a network
// filesystem).
type countdownFS struct {
	FS
	mu   sync.Mutex
	fail int
}

func (c *countdownFS) WriteFileAtomic(path string, data []byte) error {
	c.mu.Lock()
	shouldFail := c.fail > 0
	if shouldFail {
		c.fail--
	}
	c.mu.Unlock()
	if shouldFail {
		return fmt.Errorf("%w: write %s", errInjected, path)
	}
	return c.FS.WriteFileAtomic(path, data)
}

func TestStoreRetriesTransientWriteFailure(t *testing.T) {
	shrinkBackoff(t)
	dir := t.TempDir()
	st, err := OpenFS(dir, &countdownFS{FS: DiskFS, fail: ioAttempts - 1})
	if err != nil {
		t.Fatal(err)
	}
	st.Put("key", core.CachedPoint{Skipped: []string{"x"}})
	h := st.Health()
	if h.Retries == 0 {
		t.Fatal("transient failure did not retry")
	}
	if h.IOErrors != 0 || h.Degraded {
		t.Fatalf("transient failure escalated: %+v", h)
	}
	// The write landed despite the stall: a fresh store reads it from disk.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp, ok := st2.Get("key"); !ok || len(cp.Skipped) != 1 {
		t.Fatalf("retried write not durable: %+v, %v", cp, ok)
	}
}

func TestStoreDegradesToMemoryOnlyAfterPersistentIOErrors(t *testing.T) {
	shrinkBackoff(t)
	dir := t.TempDir()
	ffs := newFaultyFS(1, 0, 1.0, 0) // every write fails
	st, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !st.Degraded(); i++ {
		if i > 4*degradeAfter {
			t.Fatalf("store never degraded after %d failing writes", i)
		}
		st.Put(fmt.Sprintf("key-%d", i), core.CachedPoint{Skipped: []string{"s"}})
	}
	h := st.Health()
	if !h.Degraded || h.IOErrors < degradeAfter {
		t.Fatalf("health after degradation: %+v", h)
	}

	// Degraded mode is memory-only, not broken: puts and gets keep working,
	// journaling quietly no-ops, and the dead disk is never touched again.
	before := ffs.injectedWrites
	st.Put("after", core.CachedPoint{Skipped: []string{"a"}})
	if cp, ok := st.Get("after"); !ok || len(cp.Skipped) != 1 {
		t.Fatalf("degraded Get = %+v, %v", cp, ok)
	}
	if err := st.JournalJob(JobRecord{ID: "job-1"}); err != nil {
		t.Fatalf("degraded JournalJob: %v", err)
	}
	st.JournalPoint("job-1", 0)
	if err := st.SaveMemo(); err != nil {
		t.Fatalf("degraded SaveMemo: %v", err)
	}
	if got := st.IncompleteJobs(); got != nil {
		t.Fatalf("degraded IncompleteJobs = %v, want nil", got)
	}
	if ffs.injectedWrites != before {
		t.Fatalf("degraded store still wrote to disk (%d -> %d)", before, ffs.injectedWrites)
	}
}

// TestStoreChaos drives the store through a deterministic storm of injected
// read errors, write errors, and corrupted writes: no operation may error
// out or panic, every hit must be exact, and a final fsck -repair must
// leave the directory clean.
func TestStoreChaos(t *testing.T) {
	shrinkBackoff(t)
	dir := t.TempDir()
	ffs := newFaultyFS(42, 0.10, 0.10, 0.15)
	st, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}

	// The value is a pure function of the key: a write that fails outright
	// leaves the previous round's (identical) bytes behind, which is stale
	// but never wrong.
	want := map[string]core.CachedPoint{}
	for round := 0; round < 3; round++ {
		for i := 0; i < 60; i++ {
			key := fmt.Sprintf("chaos-%d", i)
			pt := core.CachedPoint{Skipped: []string{fmt.Sprintf("pt-%d", i)}}
			st.Put(key, pt)
			want[key] = pt
			if cp, ok := st.Get(key); ok && !reflect.DeepEqual(cp, want[key]) {
				t.Fatalf("round %d: Get(%s) returned a wrong point: %+v", round, key, cp)
			}
		}
	}
	if ffs.injectedReads+ffs.injectedWrites+ffs.corrupted == 0 {
		t.Fatal("chaos schedule injected nothing; the test is vacuous")
	}

	// A fresh store over the battered directory: reads must still be exact
	// (corrupt survivors quarantine as misses) and never error.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for key, pt := range want {
		if cp, ok := st2.Get(key); ok {
			hits++
			if !reflect.DeepEqual(cp, pt) {
				t.Fatalf("reopened Get(%s) returned a wrong point", key)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no key survived the chaos; corruption rates are miscalibrated")
	}

	// fsck repairs whatever the storm left behind.
	if _, err := Fsck(dir, true); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store not clean after repair: %+v", rep)
	}
}

func TestStoreQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Put("key", core.CachedPoint{Skipped: []string{"x"}})
	path := st.pointPath(addr("key"))
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory, so the read has to hit disk
	// (the writer still holds the point in its memory mirror).
	st, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("key"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file left at %s", path)
	}
	if h := st.Health(); h.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", h.Quarantined)
	}
	ents, err := os.ReadDir(filepath.Join(dir, ".corrupt"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(ents), err)
	}
}

func TestStoreQuarantinesCorruptMemoAndStartsCold(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	memoPath := filepath.Join(dir, "memo.gob")
	if err := os.WriteFile(memoPath, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with corrupt memo: %v", err)
	}
	if _, err := os.Stat(memoPath); !os.IsNotExist(err) {
		t.Fatal("corrupt memo snapshot not quarantined")
	}
	if h := st.Health(); h.Quarantined != 1 || h.MemoDiscards != 1 {
		t.Fatalf("health = %+v, want 1 quarantine and 1 memo discard", h)
	}
}

// Package nvmexplorer is a from-scratch Go reproduction of NVMExplorer
// (Pentecost et al., HPCA 2022): a cross-stack design-space exploration
// framework for embedded non-volatile memories (eNVMs).
//
// The package is a facade over the internal engine, re-exporting the types
// a study author needs:
//
//   - cell technology definitions, the publication survey, and the
//     "tentpole" methodology (internal/cell),
//   - the NVSim-class array characterization engine (internal/nvsim),
//   - application traffic models — generic sweeps, the NVDLA-style DNN
//     accelerator model, graph kernels, and SPEC LLC traffic
//     (internal/traffic, internal/graph, internal/cache),
//   - the analytical evaluation engine: power, long-pole performance,
//     lifetime, intermittent operation, write buffering (internal/eval),
//   - fault modeling and measured application-accuracy fault injection
//     (internal/fault, internal/nn), and
//   - the Study pipeline plus result tables, scatter views, and the
//     HTML dashboard (internal/core, internal/viz).
//
// Quickstart:
//
//	study := nvmexplorer.NewStudy("my study").
//		AddTentpole(nvmexplorer.STT, nvmexplorer.Optimistic).
//		AddTentpole(nvmexplorer.FeFET, nvmexplorer.Optimistic).
//		AddCapacity(2 << 20).
//		AddTarget(nvmexplorer.OptReadEDP).
//		AddPattern(nvmexplorer.GenericSweep(1, 10, 0.001, 0.1, 4)...)
//	results, err := study.Run()
//
// See examples/ for complete programs reproducing the paper's case studies
// and EXPERIMENTS.md for the paper-vs-measured record.
package nvmexplorer

import (
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/nvsim"
	"repro/internal/store"
	"repro/internal/traffic"
	"repro/internal/viz"
)

// Cell technology layer.
type (
	// CellDefinition describes a memory cell technology (Table I entry).
	CellDefinition = cell.Definition
	// Technology enumerates cell technology classes.
	Technology = cell.Technology
	// Flavor distinguishes tentpole variants (optimistic/pessimistic/...).
	Flavor = cell.Flavor
	// Publication is one surveyed ISSCC/IEDM/VLSI result.
	Publication = cell.Publication
)

// Technology values.
const (
	SRAM    = cell.SRAM
	PCM     = cell.PCM
	STT     = cell.STT
	SOT     = cell.SOT
	RRAM    = cell.RRAM
	CTT     = cell.CTT
	FeRAM   = cell.FeRAM
	FeFET   = cell.FeFET
	BGFeFET = cell.BGFeFET
	EDRAM   = cell.EDRAM
)

// Flavor values.
const (
	Optimistic  = cell.Optimistic
	Pessimistic = cell.Pessimistic
	Reference   = cell.Reference
	Custom      = cell.Custom
)

// Tentpole returns the canonical fixed cell for a technology and flavor.
func Tentpole(t Technology, f Flavor) (CellDefinition, error) { return cell.Tentpole(t, f) }

// Survey returns the publication database behind Figure 1 and Table I.
func Survey() []Publication { return cell.Survey() }

// DeriveTentpole re-derives a tentpole cell from a publication corpus
// (Section III-B1).
func DeriveTentpole(pubs []Publication, t Technology, f Flavor) (CellDefinition, error) {
	return cell.Derive(pubs, t, f)
}

// ToMLC re-programs a definition at a different bits-per-cell count.
func ToMLC(d CellDefinition, bitsPerCell int) (CellDefinition, error) {
	return cell.ToMLC(d, bitsPerCell)
}

// Array characterization layer (the extended-NVSim role).
type (
	// ArrayConfig is one characterization request.
	ArrayConfig = nvsim.Config
	// ArrayResult is a characterized memory array.
	ArrayResult = nvsim.Result
	// OptTarget selects the organization-search objective.
	OptTarget = nvsim.OptTarget
)

// Optimization targets.
const (
	OptReadLatency  = nvsim.OptReadLatency
	OptWriteLatency = nvsim.OptWriteLatency
	OptReadEnergy   = nvsim.OptReadEnergy
	OptWriteEnergy  = nvsim.OptWriteEnergy
	OptReadEDP      = nvsim.OptReadEDP
	OptWriteEDP     = nvsim.OptWriteEDP
	OptArea         = nvsim.OptArea
	OptLeakage      = nvsim.OptLeakage
)

// Characterize runs the array engine for one configuration.
func Characterize(cfg ArrayConfig) (ArrayResult, error) { return nvsim.Characterize(cfg) }

// CharacterizeAll returns every admissible internal organization.
func CharacterizeAll(cfg ArrayConfig) ([]ArrayResult, error) { return nvsim.CharacterizeAll(cfg) }

// CharacterizeTargets scores the organization space once and selects the
// best array per optimization target (results and errs parallel targets) —
// the batch entry point behind Study.Run.
func CharacterizeTargets(cfg ArrayConfig, targets []OptTarget) ([]ArrayResult, []error) {
	return nvsim.CharacterizeTargets(cfg, targets)
}

// CharacterizationCacheStats reports hits and misses of the engine's memo
// cache, which reuses evaluated candidate sets across repeated studies.
// The cache is process-global and bounded; entries live until
// ResetCharacterizationCache is called.
func CharacterizationCacheStats() (hits, misses int64) { return nvsim.MemoStats() }

// ResetCharacterizationCache empties the engine's memo cache.
func ResetCharacterizationCache() { nvsim.ResetMemo() }

// Application traffic layer.
type (
	// TrafficPattern describes application memory traffic.
	TrafficPattern = traffic.Pattern
	// Accelerator is the NVDLA-class DNN engine model.
	Accelerator = traffic.Accelerator
	// DNNUseCase selects weights-only vs weights+activations storage.
	DNNUseCase = traffic.DNNUseCase
)

// DNN storage use cases.
const (
	WeightsOnly    = traffic.WeightsOnly
	WeightsAndActs = traffic.WeightsAndActs
)

// GenericSweep builds a log-spaced bandwidth grid of traffic patterns.
func GenericSweep(readLoGBs, readHiGBs, writeLoGBs, writeHiGBs float64, points int) []TrafficPattern {
	return traffic.GenericSweep(readLoGBs, readHiGBs, writeLoGBs, writeHiGBs, points)
}

// NVDLA returns the paper's base DNN accelerator configuration.
func NVDLA() Accelerator { return traffic.NVDLA() }

// Evaluation layer.
type (
	// Metrics are application-level results for one (array, traffic) pair.
	Metrics = eval.Metrics
	// EvalOptions tunes an evaluation (write buffering, fault handling, ...).
	EvalOptions = eval.Options
	// WriteBufferConfig models the Section V-D write cache.
	WriteBufferConfig = eval.WriteBufferConfig
	// FaultConfig evaluates design points under a storage fault/ECC mode
	// with a reproducible injection seed.
	FaultConfig = eval.FaultConfig
	// FaultMode selects raw faulty storage, SECDED protection, or none.
	FaultMode = eval.FaultMode
	// FaultSummary records the fault view of one evaluated design point.
	FaultSummary = eval.FaultSummary
	// IntermittentResult is a daily-energy breakdown at one wake-up rate.
	IntermittentResult = eval.IntermittentResult
)

// Fault modes.
const (
	FaultNone   = eval.FaultNone
	FaultRaw    = eval.FaultRaw
	FaultSECDED = eval.FaultSECDED
)

// ParseFaultMode resolves a fault-mode name ("none", "raw", "secded").
func ParseFaultMode(s string) (FaultMode, error) { return eval.ParseFaultMode(s) }

// Evaluate applies the analytical model to one array and pattern.
func Evaluate(a ArrayResult, p TrafficPattern, opts EvalOptions) (Metrics, error) {
	return eval.Evaluate(a, p, opts)
}

// IntermittentEnergy computes daily memory energy at a wake-up rate.
func IntermittentEnergy(a ArrayResult, readsPerEvent, writesPerEvent, eventsPerDay float64) (IntermittentResult, error) {
	return eval.IntermittentEnergy(a, readsPerEvent, writesPerEvent, eventsPerDay)
}

// Study pipeline and exploration layer.
type (
	// Study is one configured design-space exploration. Beyond the cell and
	// capacity axes, the optional BitsPerCell/WordBitsAxis/WriteBuffers/
	// Faults fields widen the design space; Study.Space enumerates the
	// cross product as PointSpecs.
	Study = core.Study
	// Axis identifies one design-space dimension.
	Axis = core.Axis
	// PointSpec is the coordinate set of one design-space grid point.
	PointSpec = core.PointSpec
	// PointResult is one completed grid point streamed by Study.RunStream.
	PointResult = core.PointResult
	// Results holds a completed study, including any selected Pareto
	// frontier (Results.SelectPareto).
	Results = core.Results
	// Exploration is an adaptive run's coverage record (evaluated vs.
	// exhaustive points, pruned counts, rounds), attached to Results by
	// Mode = ModeAdaptive studies.
	Exploration = core.Exploration
	// Table is a titled result grid with CSV emission.
	Table = viz.Table
	// Scatter is a figure-style scatter view (ASCII and SVG rendering).
	Scatter = viz.Scatter
	// Dashboard renders panels into a self-contained HTML page.
	Dashboard = viz.Dashboard
)

// Execution modes for Study.Mode: the exhaustive full-grid walk (the
// default) and the Pareto-guided adaptive search with a deterministic
// point budget (Study.Budget, Study.Seed).
const (
	ModeExhaustive = core.ModeExhaustive
	ModeAdaptive   = core.ModeAdaptive
)

// NewStudy creates an empty study.
func NewStudy(name string) *Study { return core.NewStudy(name) }

// ParetoMetricNames lists the metrics Results.SelectPareto can optimize.
func ParetoMetricNames() []string { return core.ParetoMetricNames() }

// Persistence layer.
type (
	// PointCache is the per-point result cache a Study consults via its
	// Cache field: hits replay stored grid points without characterizing.
	PointCache = core.PointCache
	// Store is the persistent, content-addressed study store — the
	// PointCache behind `nvmexplorer run/serve -store`.
	Store = store.Store
)

// OpenStore opens (or creates) a persistent study store rooted at dir and
// warms the characterization engine from its memo snapshot; dir == ""
// yields a memory-only store. Attach it with Study.Cache = store, and call
// Store.SaveMemo before exiting to persist the engine cache too.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

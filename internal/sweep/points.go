package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/viz"
)

// DesignPoint is one evaluated (array, traffic) pair flattened into the
// row shape the per-technology CSVs use — the unit of the study service's
// JSON and NDJSON responses. Field order matches the CSV column order.
type DesignPoint struct {
	Cell          string `json:"cell"`
	Technology    string `json:"technology"`
	BitsPerCell   int    `json:"bits_per_cell"`
	CapacityBytes int64  `json:"capacity_bytes"`
	OptTarget     string `json:"opt_target"`
	Pattern       string `json:"pattern"`

	ReadLatencyNS   Float `json:"read_latency_ns"`
	WriteLatencyNS  Float `json:"write_latency_ns"`
	ReadEnergyPJ    Float `json:"read_energy_pj"`
	WriteEnergyPJ   Float `json:"write_energy_pj"`
	LeakagePowerMW  Float `json:"leakage_power_mw"`
	AreaMM2         Float `json:"area_mm2"`
	AreaEfficiency  Float `json:"area_efficiency"`
	DensityMbPerMM2 Float `json:"density_mb_per_mm2"`

	TotalPowerMW   Float `json:"total_power_mw"`
	DynamicPowerMW Float `json:"dynamic_power_mw"`
	MemTimePerSec  Float `json:"mem_time_per_sec"`
	TaskLatencyS   Float `json:"task_latency_s"`
	MeetsTaskRate  bool  `json:"meets_task_rate"`
	LifetimeYears  Float `json:"lifetime_years"`

	// Axis coordinates beyond the legacy (cell, bits, capacity, target,
	// pattern) set. word_bits and write_buffer appear only when the study
	// declares the matching axis; the fault block appears whenever the
	// point was evaluated under a fault mode, with all of its subfields
	// always present. Legacy configurations keep their exact historical
	// encoding.
	WordBits    int         `json:"word_bits,omitempty"`
	WriteBuffer string      `json:"write_buffer,omitempty"`
	Fault       *FaultPoint `json:"fault,omitempty"`

	// Pareto marks rows on the selected frontier; emitted only in the
	// buffered JSON body (NDJSON reports the frontier as a trailer).
	Pareto bool `json:"pareto,omitempty"`
}

// FaultPoint is the fault view of one row: the mode and per-point seed the
// point was evaluated under, plus the modeled error rates. It is attached
// whole or not at all, so every fault-evaluated row has the same shape.
type FaultPoint struct {
	Mode         string `json:"mode"`
	Seed         int64  `json:"seed"`
	RawBER       Float  `json:"raw_ber"`
	EffectiveBER Float  `json:"effective_ber"`
}

// Float marshals like float64 but encodes non-finite values (an
// endurance-unlimited lifetime is +Inf) as null, which plain float64
// rejects outright.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, mapping null back to +Inf.
func (f *Float) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = Float(math.Inf(1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Point flattens one evaluation into its legacy row form, with no
// axis-dependent columns. Equivalent to PointOf(m, nil).
func Point(m eval.Metrics) DesignPoint { return PointOf(m, nil) }

// PointOf flattens one evaluation into its row form for a study: axis
// columns (word bits, write buffer) appear when the study declares the
// axis, and fault columns whenever the point was evaluated under a fault
// mode. A nil study emits the legacy column set only.
func PointOf(m eval.Metrics, s *core.Study) DesignPoint {
	p := basePoint(&m)
	if s != nil {
		if s.Declares(core.AxisWordBits) {
			p.WordBits = m.Array.WordBits
		}
		if s.Declares(core.AxisWriteBuffer) {
			p.WriteBuffer = m.WriteBuffer.Label()
		}
	}
	if f := m.Fault; f != nil {
		p.Fault = &FaultPoint{
			Mode:         f.Mode.String(),
			Seed:         f.Seed,
			RawBER:       Float(f.RawBER),
			EffectiveBER: Float(f.EffectiveBER),
		}
	}
	return p
}

func basePoint(m *eval.Metrics) DesignPoint {
	a := &m.Array
	return DesignPoint{
		Cell:            a.Cell.Name,
		Technology:      a.Cell.Tech.String(),
		BitsPerCell:     a.Cell.BitsPerCell,
		CapacityBytes:   a.CapacityBytes,
		OptTarget:       a.Target.String(),
		Pattern:         m.Pattern.Name,
		ReadLatencyNS:   Float(a.ReadLatencyNS),
		WriteLatencyNS:  Float(a.WriteLatencyNS),
		ReadEnergyPJ:    Float(a.ReadEnergyPJ),
		WriteEnergyPJ:   Float(a.WriteEnergyPJ),
		LeakagePowerMW:  Float(a.LeakagePowerMW),
		AreaMM2:         Float(a.AreaMM2),
		AreaEfficiency:  Float(a.AreaEfficiency),
		DensityMbPerMM2: Float(a.DensityMbPerMM2()),
		TotalPowerMW:    Float(m.TotalPowerMW),
		DynamicPowerMW:  Float(m.DynamicPowerMW),
		MemTimePerSec:   Float(m.MemoryTimePerSec),
		TaskLatencyS:    Float(m.TaskLatencyS),
		MeetsTaskRate:   m.MeetsTaskRate,
		LifetimeYears:   Float(m.LifetimeYears),
	}
}

// Points flattens a completed study into rows, in Results order.
func Points(res *core.Results) []DesignPoint {
	out := make([]DesignPoint, 0, len(res.Metrics))
	for _, m := range res.Metrics {
		out = append(out, PointOf(m, res.Study))
	}
	return out
}

// Frontier is the Pareto-selection block of a study body: the metrics it
// optimized and the row indices (into the points array / NDJSON row order)
// that survived.
type Frontier struct {
	Metrics []string `json:"metrics"`
	Points  []int    `json:"points"`
}

// StudyResult is the JSON body of a completed study — what
// `nvmexplorer run -format json` prints and what the study service
// returns from POST /v1/studies.
type StudyResult struct {
	Name    string        `json:"name"`
	Points  []DesignPoint `json:"points"`
	Skipped []string      `json:"skipped,omitempty"`
	// FailedPoints lists grid points lost to isolated faults (a panicking
	// characterization or evaluation); absent on healthy runs, so existing
	// output stays byte-identical.
	FailedPoints []core.FailedPoint `json:"failed_points,omitempty"`
	Frontier     *Frontier          `json:"frontier,omitempty"`
	// Exploration summarizes an adaptive run's design-space coverage
	// (points evaluated vs. the exhaustive grid, rounds, pruned counts);
	// absent on exhaustive runs, so existing output stays byte-identical.
	// Its fields are pure functions of (config, seed, budget) — run
	// telemetry such as cache warmth never appears in the body.
	Exploration *core.Exploration `json:"exploration,omitempty"`
}

// Result converts a completed study into its JSON body form. When the
// study declares a Pareto selection, call res.EnsureFrontier first (the
// writers do); frontier rows are flagged and the frontier block attached.
func Result(res *core.Results) StudyResult {
	out := StudyResult{Name: res.Study.Name, Points: Points(res), Skipped: res.Skipped,
		FailedPoints: res.FailedPoints, Exploration: res.Exploration}
	if len(res.Study.Pareto) > 0 && res.Frontier != nil {
		for _, i := range res.Frontier {
			out.Points[i].Pareto = true
		}
		out.Frontier = &Frontier{Metrics: res.Study.Pareto, Points: res.Frontier}
	}
	return out
}

// WriteJSON writes the study's JSON body (indented, trailing newline) to w.
// The encoding is deterministic, so any two runs of the same configuration
// produce byte-identical output regardless of worker count or caching.
func WriteJSON(w io.Writer, res *core.Results) error {
	if err := res.EnsureFrontier(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Result(res))
}

// ndjsonTrailer is the final NDJSON line of a Pareto-selected study. Rows
// stream before the full result set — and thus the frontier — is known, so
// per-row pareto flags are impossible; the frontier arrives as a trailer
// instead, in both the batch writer and the study service's live stream.
type ndjsonTrailer struct {
	Frontier Frontier `json:"frontier"`
}

// WriteNDJSON writes one DesignPoint JSON object per line to w, in Results
// order — the batch form of the study service's streamed NDJSON response —
// followed, for Pareto-selected studies, by one frontier trailer line.
// Rows render through a RowEncoder, so emission allocates (almost) nothing
// per row.
func WriteNDJSON(w io.Writer, res *core.Results) error {
	if err := res.EnsureFrontier(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var enc RowEncoder
	for i := range res.Metrics {
		if err := enc.Encode(bw, &res.Metrics[i], res.Study); err != nil {
			return err
		}
	}
	if err := WriteNDJSONTrailers(bw, res); err != nil {
		return err
	}
	return bw.Flush()
}

// ndjsonFailedTrailer is the failed-points NDJSON line of a study that lost
// grid points to isolated faults; emitted before any frontier trailer and
// only when points actually failed, so healthy streams are unchanged.
type ndjsonFailedTrailer struct {
	FailedPoints []core.FailedPoint `json:"failed_points"`
}

// ndjsonExplorationTrailer is the exploration NDJSON line of an adaptive
// study; emitted last, after any frontier trailer, and only in adaptive
// mode, so exhaustive streams are unchanged.
type ndjsonExplorationTrailer struct {
	Exploration *core.Exploration `json:"exploration"`
}

// WriteNDJSONTrailers writes every trailer line of a study stream — the
// failed-points block when grid points were lost, then the frontier of a
// Pareto-selected study, then an adaptive run's exploration block — the
// piece the study service appends after its live row stream so batch and
// streamed NDJSON stay byte-identical.
func WriteNDJSONTrailers(w io.Writer, res *core.Results) error {
	if len(res.FailedPoints) > 0 {
		t := ndjsonFailedTrailer{FailedPoints: res.FailedPoints}
		if err := json.NewEncoder(w).Encode(t); err != nil {
			return err
		}
	}
	if err := WriteNDJSONFrontier(w, res); err != nil {
		return err
	}
	if res.Exploration != nil {
		t := ndjsonExplorationTrailer{Exploration: res.Exploration}
		if err := json.NewEncoder(w).Encode(t); err != nil {
			return err
		}
	}
	return nil
}

// WriteNDJSONFrontier writes the single frontier trailer line of a
// Pareto-selected study — the piece the study service appends after its
// live row stream so batch and streamed NDJSON stay byte-identical. It is
// a no-op when the study declares no selection.
func WriteNDJSONFrontier(w io.Writer, res *core.Results) error {
	if len(res.Study.Pareto) == 0 {
		return nil
	}
	if err := res.EnsureFrontier(); err != nil {
		return err
	}
	t := ndjsonTrailer{Frontier: Frontier{Metrics: res.Study.Pareto, Points: res.Frontier}}
	return json.NewEncoder(w).Encode(t)
}

// WriteCombinedCSV writes every per-technology table that WriteCSVs would
// emit as files into a single stream, in first-appearance technology order
// with a blank line between tables.
func WriteCombinedCSV(w io.Writer, res *core.Results) error {
	if err := res.EnsureFrontier(); err != nil {
		return err
	}
	tables, order := techTables(res)
	for i, techName := range order {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := tables[techName].WriteCSV(w); err != nil {
			return fmt.Errorf("sweep: writing %s table: %w", techName, err)
		}
	}
	return nil
}

// WriteDashboardHTML renders the completed study as the self-contained
// HTML dashboard — tables plus scatter views with any Pareto frontier
// highlighted — shared byte-for-byte by `nvmexplorer run -format html` and
// the study service's format=html.
func WriteDashboardHTML(w io.Writer, res *core.Results) error {
	if err := res.EnsureFrontier(); err != nil {
		return err
	}
	return res.Dashboard().WriteHTML(w)
}

// techTables partitions the metrics into one table per technology,
// preserving first-appearance order — shared by WriteCSVs (files) and
// WriteCombinedCSV (single stream). Studies that declare extra axes (word
// bits, write buffers, fault modes) or a Pareto selection gain the matching
// trailing columns; legacy studies keep the exact historical column set.
func techTables(res *core.Results) (map[string]*viz.Table, []string) {
	s := res.Study
	withWord := s.Declares(core.AxisWordBits)
	withWB := s.Declares(core.AxisWriteBuffer)
	withFault := s.Declares(core.AxisFault) || s.Options.Fault != nil
	withPareto := len(s.Pareto) > 0
	columns := []string{
		"Cell", "BitsPerCell", "CapacityBytes", "OptTarget", "Pattern",
		"ReadLatencyNS", "WriteLatencyNS", "ReadEnergyPJ", "WriteEnergyPJ",
		"LeakagePowerMW", "AreaMM2", "AreaEfficiency", "DensityMbPerMM2",
		"TotalPowerMW", "DynamicPowerMW", "MemTimePerSec", "TaskLatencyS",
		"MeetsTaskRate", "LifetimeYears"}
	if withWord {
		columns = append(columns, "WordBits")
	}
	if withWB {
		columns = append(columns, "WriteBuffer")
	}
	if withFault {
		columns = append(columns, "FaultMode", "RawBER", "EffectiveBER")
	}
	if withPareto {
		columns = append(columns, "Pareto")
	}
	frontier := map[int]bool{}
	for _, i := range res.Frontier {
		frontier[i] = true
	}

	perTech := map[string]*viz.Table{}
	var order []string
	var wbLabels wbLabelCache
	for mi := range res.Metrics {
		m := &res.Metrics[mi]
		techName := m.Array.Cell.Tech.String()
		t, ok := perTech[techName]
		if !ok {
			t = viz.NewTable(techName, columns...)
			perTech[techName] = t
			order = append(order, techName)
		}
		a := &m.Array
		row := t.Row().
			Str(a.Cell.Name).Int(int64(a.Cell.BitsPerCell)).
			Int(a.CapacityBytes).Str(a.Target.String()).Str(m.Pattern.Name).
			Float(a.ReadLatencyNS).Float(a.WriteLatencyNS).Float(a.ReadEnergyPJ).
			Float(a.WriteEnergyPJ).Float(a.LeakagePowerMW).Float(a.AreaMM2).
			Float(a.AreaEfficiency).Float(a.DensityMbPerMM2()).
			Float(m.TotalPowerMW).Float(m.DynamicPowerMW).Float(m.MemoryTimePerSec).
			Float(m.TaskLatencyS).Bool(m.MeetsTaskRate).Float(m.LifetimeYears)
		if withWord {
			row.Int(int64(a.WordBits))
		}
		if withWB {
			row.Str(wbLabels.label(m.WriteBuffer))
		}
		if withFault {
			if f := m.Fault; f != nil {
				row.Str(f.Mode.String()).Float(f.RawBER).Float(f.EffectiveBER)
			} else {
				row.Str("none").Float(0).Float(0)
			}
		}
		if withPareto {
			row.Bool(frontier[mi])
		}
		row.MustAdd()
	}
	return perTech, order
}

// Package store is NVMExplorer-Go's persistent, content-addressed study
// store: the durable layer under the characterization pipeline that lets
// repeated and partially overlapping studies reuse prior work across
// process restarts (`nvmexplorer run -store DIR`, `nvmexplorer serve
// -store DIR`).
//
// The store holds one entry per evaluated design point, addressed by the
// SHA-256 of the point's canonical key (core.Study.PointKey): the cell
// definition, capacity, word bits, bits per cell, targets, constraints,
// traffic, and the resolved per-point evaluation options. Any study whose
// grid contains a stored point — same study or a different one submitted
// later — replays it verbatim, so a fully warm study performs zero engine
// characterizations and returns bytes identical to a cold run.
//
// Entries live in memory (bounded) and, when a directory is configured, on
// disk as one gob file per point under DIR/points/, written atomically
// (temp file + rename) and wrapped in a CRC-32-checksummed envelope so a
// crash never leaves a torn entry and a bit flip never replays a wrong
// one. The store also snapshots the nvsim memo cache to DIR/memo.gob
// (SaveMemo, reloaded by Open) so partially overlapping studies skip
// re-characterization too, and journals async jobs under DIR/jobs/
// (journal.go) so a killed server resumes them on restart.
//
// Storage corruption is an expected operating condition, not an error: a
// torn, foreign, or bit-flipped point file is quarantined into DIR/.corrupt/
// and read as a miss (the point recomputes and the next Put repairs it),
// transient I/O errors are retried with backoff, and a disk that keeps
// failing degrades the store to memory-only mode instead of failing
// studies. `nvmexplorer fsck` (fsck.go) scans, reports, and repairs a
// store directory offline.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/nvsim"
)

// recordVersion stamps every point file (the checksummed envelope form).
// Entries from other schema versions read as misses and are overwritten on
// the next Put; recordVersionV1 files (pre-checksum) remain readable.
const (
	recordVersion   = "nvmx-store/v2"
	recordVersionV1 = "nvmx-store/v1"
)

// memCacheMax bounds the in-memory mirror of the store. Past the cap, Get
// still reads disk and Put still writes it; the entries just aren't kept
// resident.
const memCacheMax = 16384

// Disk-failure policy: transient I/O errors retry up to ioAttempts with
// exponential backoff starting at ioBackoff; after degradeAfter consecutive
// failed operations (each already past its retries) the store degrades to
// memory-only mode for the rest of the process — the disk is treated as
// gone, and studies keep completing from memory.
const (
	ioAttempts   = 3
	degradeAfter = 8
)

// ioBackoff is a variable so fault-injection tests can shrink the waits.
var ioBackoff = time.Millisecond

// envelope is the on-disk frame of every v2 file: a version, a CRC-32
// (IEEE) of Payload, and the gob-encoded payload itself. The checksum turns
// silent bit flips into detected corruption instead of gob decoding noise —
// or worse, silently wrong physics.
type envelope struct {
	Version string
	Sum     uint32
	Payload []byte
}

// pointPayload is the inner form of one point. The full canonical key is
// stored alongside the payload and verified on read, so a hash collision
// or a foreign file in the directory reads as a miss, never a wrong result.
type pointPayload struct {
	Key   string
	Point core.CachedPoint
}

// recordV1 is the legacy (pre-checksum) on-disk form, still readable.
type recordV1 struct {
	Version string
	Key     string
	Point   core.CachedPoint
}

// readStatus classifies one point-file read (shared with fsck).
type readStatus int

const (
	readOK readStatus = iota
	readLegacy
	readMissing
	readCorrupt
	readIOError
)

// Store is a persistent point cache. It implements core.PointCache and is
// safe for concurrent use. The zero value is not usable; call Open.
type Store struct {
	dir string // "" = memory-only
	fs  FS

	mu  sync.Mutex
	mem map[string]core.CachedPoint

	// Study manifests (study.go): fingerprint → record mirror of DIR/studies.
	studiesMu  sync.Mutex
	studiesMem map[string]StudyRecord

	hits, misses atomic.Int64

	// Self-healing counters (see HealthStats).
	quarantined atomic.Int64
	ioErrors    atomic.Int64
	retries     atomic.Int64
	diskStreak  atomic.Int64 // consecutive failed disk ops
	degraded    atomic.Bool
}

// Open creates or reopens a store on the real filesystem. dir == "" builds
// a memory-only store (no persistence, no memo snapshot, no journal).
func Open(dir string) (*Store, error) {
	return OpenFS(dir, DiskFS)
}

// OpenFS is Open with an explicit filesystem — the hook fault-injection
// tests use to exercise the store's corruption and I/O-error handling
// deterministically. The directory is created as needed and a memo
// snapshot left by SaveMemo is reloaded into the characterization engine;
// a missing snapshot only costs recomputation, and a corrupt one is
// quarantined and logged, never fatal (a bad snapshot must not block
// startup).
func OpenFS(dir string, fsys FS) (*Store, error) {
	s := &Store{dir: dir, fs: fsys, mem: make(map[string]core.CachedPoint), studiesMem: make(map[string]StudyRecord)}
	if dir == "" {
		return s, nil
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "points")); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if data, err := fsys.ReadFile(s.memoPath()); err == nil {
		if _, err := nvsim.RestoreMemo(bytes.NewReader(data)); err != nil {
			// Log-and-continue with a fresh memo: the snapshot is an
			// accelerator, and a corrupt one must never block startup.
			s.quarantine(s.memoPath())
			log.Printf("store: corrupt memo snapshot quarantined, starting cold: %v", err)
		}
	}
	return s, nil
}

// Dir returns the backing directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

func (s *Store) memoPath() string { return filepath.Join(s.dir, "memo.gob") }

// pointPath shards point files by the first hash byte to keep directory
// listings manageable under large campaigns.
func (s *Store) pointPath(sum string) string {
	return filepath.Join(s.dir, "points", sum[:2], sum+".gob")
}

// addr content-addresses a canonical point key.
func addr(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// diskEnabled reports whether the store should touch the disk at all.
func (s *Store) diskEnabled() bool { return s.dir != "" && !s.degraded.Load() }

// diskOK records a successful disk operation, resetting the failure streak.
func (s *Store) diskOK() { s.diskStreak.Store(0) }

// diskFail records a disk operation that failed past its retries. Once the
// streak reaches degradeAfter, the store flips to memory-only mode: every
// later Get/Put/journal call skips the disk, so a dead volume costs one
// log line instead of a failed study.
func (s *Store) diskFail(op string, err error) {
	s.ioErrors.Add(1)
	if s.diskStreak.Add(1) == degradeAfter && !s.degraded.Swap(true) {
		log.Printf("store: %d consecutive disk failures (last: %s: %v); degrading to memory-only mode", degradeAfter, op, err)
	}
}

// quarantine moves a corrupt or foreign file into DIR/.corrupt/ so it can
// never crash (or slow) another run, while staying available for forensics.
// Failures are swallowed: quarantine is best-effort cleanup on a path that
// already reads as a miss.
func (s *Store) quarantine(path string) {
	dir := filepath.Join(s.dir, ".corrupt")
	if err := s.fs.MkdirAll(dir); err != nil {
		return
	}
	dst := filepath.Join(dir, fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano()))
	if err := s.fs.Rename(path, dst); err != nil {
		return
	}
	s.quarantined.Add(1)
}

// Get implements core.PointCache: memory first, then disk. A disk hit is
// re-cached in memory (within the bound).
func (s *Store) Get(key string) (core.CachedPoint, bool) {
	s.mu.Lock()
	cp, ok := s.mem[key]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return cp, true
	}
	if s.diskEnabled() {
		if cp, ok = s.readPoint(key); ok {
			s.mu.Lock()
			if len(s.mem) < memCacheMax {
				s.mem[key] = cp
			}
			s.mu.Unlock()
			s.hits.Add(1)
			return cp, true
		}
	}
	s.misses.Add(1)
	return core.CachedPoint{}, false
}

// readPoint loads and verifies one point file. Any failure is a miss:
// absence silently, I/O errors after a retry (feeding the degradation
// tracker), and corruption — torn write, checksum mismatch, schema drift,
// hash collision — after quarantining the file so it never costs another
// read.
func (s *Store) readPoint(key string) (core.CachedPoint, bool) {
	path := s.pointPath(addr(key))
	data, status := s.readFileRetry(path)
	if status != readOK {
		return core.CachedPoint{}, false
	}
	p, status := decodePoint(data, key)
	switch status {
	case readOK, readLegacy:
		s.diskOK()
		return p.Point, true
	case readCorrupt:
		s.quarantine(path)
	}
	return core.CachedPoint{}, false
}

// readFileRetry reads a file, retrying transient I/O errors once. Absence
// is a clean miss; any other persistent error counts toward degradation.
func (s *Store) readFileRetry(path string) ([]byte, readStatus) {
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			time.Sleep(ioBackoff)
		}
		var data []byte
		if data, err = s.fs.ReadFile(path); err == nil {
			return data, readOK
		}
		if os.IsNotExist(err) {
			return nil, readMissing
		}
	}
	s.diskFail("read "+path, err)
	return nil, readIOError
}

// decodePoint verifies and decodes one point file's bytes against the key
// that addressed it. wantKey == "" skips key verification (fsck scans files
// without knowing their keys and checks the address itself instead).
func decodePoint(data []byte, wantKey string) (pointPayload, readStatus) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return pointPayload{}, readCorrupt
	}
	switch env.Version {
	case recordVersion:
		if crc32.ChecksumIEEE(env.Payload) != env.Sum {
			return pointPayload{}, readCorrupt
		}
		var p pointPayload
		if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&p); err != nil {
			return pointPayload{}, readCorrupt
		}
		if wantKey != "" && p.Key != wantKey {
			return pointPayload{}, readCorrupt
		}
		return p, readOK
	case recordVersionV1:
		// Legacy pre-checksum file: decode whole, key-verified but unsummed.
		var rec recordV1
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
			return pointPayload{}, readCorrupt
		}
		if wantKey != "" && rec.Key != wantKey {
			return pointPayload{}, readCorrupt
		}
		return pointPayload{Key: rec.Key, Point: rec.Point}, readLegacy
	default:
		// A version this binary doesn't know — plausibly written by a newer
		// one sharing the directory. A miss, but not corruption: leave it.
		return pointPayload{}, readMissing
	}
}

// encodePoint builds the on-disk v2 bytes for one point.
func encodePoint(key string, pt core.CachedPoint) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&pointPayload{Key: key, Point: pt}); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	env := envelope{Version: recordVersion, Sum: crc32.ChecksumIEEE(payload.Bytes()), Payload: payload.Bytes()}
	if err := gob.NewEncoder(&out).Encode(&env); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Put implements core.PointCache: write-through to memory and, when
// configured, disk. Disk errors are retried, then swallowed — the store is
// an accelerator, and a read-only or full volume must not fail the study.
func (s *Store) Put(key string, pt core.CachedPoint) {
	s.mu.Lock()
	if len(s.mem) < memCacheMax {
		s.mem[key] = pt
	}
	s.mu.Unlock()
	if !s.diskEnabled() {
		return
	}
	_ = s.writePoint(key, pt)
}

func (s *Store) writePoint(key string, pt core.CachedPoint) error {
	path := s.pointPath(addr(key))
	data, err := encodePoint(key, pt)
	if err != nil {
		return err
	}
	if err := s.fs.MkdirAll(filepath.Dir(path)); err != nil {
		s.diskFail("mkdir "+filepath.Dir(path), err)
		return err
	}
	return s.writeFileRetry(path, data)
}

// writeFileRetry atomically writes a file, retrying transient failures
// with exponential backoff before feeding the degradation tracker.
func (s *Store) writeFileRetry(path string, data []byte) error {
	var err error
	for attempt := 0; attempt < ioAttempts; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			time.Sleep(ioBackoff << (attempt - 1))
		}
		if err = s.fs.WriteFileAtomic(path, data); err == nil {
			s.diskOK()
			return nil
		}
	}
	s.diskFail("write "+path, err)
	return err
}

// SaveMemo snapshots the engine's memo cache into the store directory
// (atomic replace of DIR/memo.gob), so the next Open warms the engine for
// partially overlapping studies. Memory-only and degraded stores no-op.
func (s *Store) SaveMemo() error {
	if !s.diskEnabled() {
		return nil
	}
	var buf bytes.Buffer
	if err := nvsim.SnapshotMemo(&buf); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.writeFileRetry(s.memoPath(), buf.Bytes()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Stats reports how many point lookups hit (served without touching the
// characterization engine) versus missed since the store was opened.
func (s *Store) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// ResetStats zeroes the hit/miss counters (tests and benchmarks).
func (s *Store) ResetStats() {
	s.hits.Store(0)
	s.misses.Store(0)
}

// Degraded reports whether persistent I/O failures demoted the store to
// memory-only mode (see diskFail). It never flips back within a process:
// an operator repairs the volume and restarts, or runs fsck.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// HealthStats is the store's self-healing telemetry, served on /v1/stats.
type HealthStats struct {
	// Quarantined counts corrupt or foreign files moved to DIR/.corrupt/.
	Quarantined int64
	// IOErrors counts disk operations that failed past their retries.
	IOErrors int64
	// Retries counts individual retry attempts after transient failures.
	Retries int64
	// Degraded reports memory-only fallback mode.
	Degraded bool
}

// Health returns the current self-healing counters.
func (s *Store) Health() HealthStats {
	return HealthStats{
		Quarantined: s.quarantined.Load(),
		IOErrors:    s.ioErrors.Load(),
		Retries:     s.retries.Load(),
		Degraded:    s.degraded.Load(),
	}
}

// Len reports how many points are resident in memory. Disk may hold more.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

package core

import (
	"reflect"
	"testing"

	"repro/internal/cell"
	"repro/internal/nvsim"
	"repro/internal/traffic"
)

// adaptiveRef builds the adaptive reference grid these tests share: 2 cells
// × 16 geometric capacities = 32 points, selecting on array read latency and
// energy — metrics that concentrate the frontier at small capacities, so
// refinement has regions to skip.
func adaptiveRef(workers, budget int, seed int64) *Study {
	s := NewStudy("adaptive-ref")
	s.AddTentpole(cell.STT, cell.Optimistic)
	s.AddTentpole(cell.FeFET, cell.Optimistic)
	for i := 0; i < 16; i++ {
		s.AddCapacity(64 << 10 << i)
	}
	s.AddPattern(traffic.Pattern{Name: "p", ReadsPerSec: 1e6, WritesPerSec: 1e5})
	s.Pareto = []string{"read_latency_ns", "read_energy_pj"}
	s.Mode = ModeAdaptive
	s.Budget = budget
	s.Seed = seed
	s.Workers = workers
	return s
}

// TestAdaptiveDeterministic pins the adaptive contract: the same
// (configuration, seed, budget) produces identical results across repeat
// runs and at any worker count.
func TestAdaptiveDeterministic(t *testing.T) {
	a, err := adaptiveRef(1, 10, 42).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := adaptiveRef(1, 10, 42).Run()
	if err != nil {
		t.Fatal(err)
	}
	c, err := adaptiveRef(8, 10, 42).Run()
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]*Results{"second run": b, "Workers=8": c} {
		if !reflect.DeepEqual(a.Arrays, other.Arrays) ||
			!reflect.DeepEqual(a.Metrics, other.Metrics) ||
			!reflect.DeepEqual(a.Skipped, other.Skipped) ||
			!reflect.DeepEqual(a.Exploration, other.Exploration) {
			t.Errorf("%s diverged from the first run", name)
		}
	}
}

// TestAdaptiveSubsetOfExhaustive checks that an adaptive run is a faithful
// subset of the exhaustive grid — every evaluated point's rows match the
// exhaustive run's rows for the same spec — and that the exploration
// accounting partitions the grid exactly.
func TestAdaptiveSubsetOfExhaustive(t *testing.T) {
	ex := adaptiveRef(4, 0, 0)
	ex.Mode = ""
	exRes, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ex.Space()
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive row ranges per point: every spec has 1 target × 1 pattern.
	if len(exRes.Metrics) != len(specs) {
		t.Fatalf("exhaustive rows = %d, want one per point (%d)", len(exRes.Metrics), len(specs))
	}

	ad, err := adaptiveRef(4, 0, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	e := ad.Exploration
	if e == nil {
		t.Fatal("adaptive run carries no exploration block")
	}
	if e.EvaluatedPoints+e.PrunedBudget+e.PrunedInfeasible != e.ExhaustivePoints ||
		e.ExhaustivePoints != len(specs) {
		t.Fatalf("exploration accounting does not partition the grid: %+v", e)
	}
	if len(e.Indices) != e.EvaluatedPoints || len(ad.Metrics) != e.EvaluatedPoints {
		t.Fatalf("indices/rows = %d/%d, want %d", len(e.Indices), len(ad.Metrics), e.EvaluatedPoints)
	}
	for row, idx := range e.Indices {
		if row > 0 && idx <= e.Indices[row-1] {
			t.Fatal("evaluated indices not strictly ascending")
		}
		if !reflect.DeepEqual(ad.Metrics[row], exRes.Metrics[idx]) {
			t.Errorf("point %d: adaptive row diverges from exhaustive", idx)
		}
	}
	if e.EvaluatedPoints >= len(specs) {
		t.Errorf("adaptive evaluated the whole grid (%d points): nothing was explored", e.EvaluatedPoints)
	}

	// Frontier recall on the reference grid: unbudgeted refinement must
	// recover the full exhaustive frontier.
	exFront, err := exRes.ParetoFrontier(ex.Pareto)
	if err != nil {
		t.Fatal(err)
	}
	adFront, err := ad.ParetoFrontier(ad.Study.Pareto)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]bool, len(exFront))
	for _, ri := range exFront {
		want[ri] = true // exhaustive row index == spec index here
	}
	for _, ri := range adFront {
		delete(want, e.Indices[ri])
	}
	if len(want) != 0 {
		t.Errorf("adaptive frontier missed %d exhaustive frontier points: %v", len(want), want)
	}
}

// TestAdaptiveBudgetHalving checks the budget is a hard cap spent by
// successive halving: a budget below the first coarse round's candidate
// count still completes, evaluating exactly the budget.
func TestAdaptiveBudgetHalving(t *testing.T) {
	res, err := adaptiveRef(2, 4, 7).Run()
	if err != nil {
		t.Fatal(err)
	}
	e := res.Exploration
	if e.EvaluatedPoints != 4 {
		t.Errorf("evaluated %d points under budget 4, want exactly 4 (more candidates exist)", e.EvaluatedPoints)
	}
	if e.Rounds < 2 {
		t.Errorf("rounds = %d, want >= 2: halving may not spend the whole budget in one round", e.Rounds)
	}
}

// TestAdaptiveWarmStoreReplay checks the cache interplay: a store-warm
// adaptive run does zero engine work, replays the identical evaluated
// subset (budget counts cached points too — that is what keeps warm and
// cold runs byte-identical), and reports the shift through the telemetry
// fields.
func TestAdaptiveWarmStoreReplay(t *testing.T) {
	cache := &countingCache{m: map[string]CachedPoint{}}
	s := adaptiveRef(4, 10, 42)
	s.Cache = cache
	cold, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Exploration.Characterizations == 0 {
		t.Fatal("cold run reported zero characterizations")
	}

	nvsim.ResetMemo()
	s2 := adaptiveRef(4, 10, 42)
	s2.Cache = cache
	warm, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := nvsim.MemoStats(); hits != 0 || misses != 0 {
		t.Errorf("warm run touched the engine: memo hits=%d misses=%d", hits, misses)
	}
	we := warm.Exploration
	if we.Characterizations != 0 || we.CacheHits != we.EvaluatedPoints {
		t.Errorf("warm telemetry = %d characterizations / %d cache hits, want 0 / %d",
			we.Characterizations, we.CacheHits, we.EvaluatedPoints)
	}
	if !reflect.DeepEqual(cold.Metrics, warm.Metrics) ||
		!reflect.DeepEqual(cold.Arrays, warm.Arrays) ||
		!reflect.DeepEqual(cold.Exploration.Indices, warm.Exploration.Indices) {
		t.Error("warm replay diverges from cold computation")
	}
}

// TestAdaptivePrunesInfeasible checks constraint pruning: capacities whose
// bare cell matrix exceeds the area budget are pruned from the search
// before characterization and counted in the exploration block.
func TestAdaptivePrunesInfeasible(t *testing.T) {
	ResetExplorationStats()
	s := adaptiveRef(2, 0, 0)
	s.MaxAreaMM2 = 2 // excludes the larger half of the capacity axis outright
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	e := res.Exploration
	if e.PrunedInfeasible == 0 {
		t.Fatal("no points pruned by the constraint bound under a 2mm² budget")
	}
	if got := ReadExplorationStats(); got.PrefilteredConfigs == 0 || got.AdaptiveStudies != 1 {
		t.Errorf("exploration counters = %+v, want prefiltered configs and one adaptive study", got)
	}
}

// TestAdaptiveValidation covers the mode's configuration errors.
func TestAdaptiveValidation(t *testing.T) {
	noPareto := adaptiveRef(1, 0, 0)
	noPareto.Pareto = nil
	if _, err := noPareto.Run(); err == nil {
		t.Error("adaptive without pareto metrics did not error")
	}
	neg := adaptiveRef(1, 0, 0)
	neg.Budget = -1
	if _, err := neg.Run(); err == nil {
		t.Error("negative budget did not error")
	}
	bad := adaptiveRef(1, 0, 0)
	bad.Mode = "genetic"
	if _, err := bad.Run(); err == nil {
		t.Error("unknown mode did not error")
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/nvsim"
	"repro/internal/store"
	"repro/internal/sweep"
)

// The store/worker wire protocol: the HTTP face of internal/store plus the
// shard-execution endpoint the fabric coordinator fans studies out
// through. Record bodies are the store's own CRC-enveloped gob bytes,
// shipped verbatim (application/octet-stream) — the consumer's envelope
// check covers the network path for free, so a torn response reads as
// detected corruption, never as silently truncated physics.
//
//	GET  /v1/version                    protocol + schema versions (worker handshake)
//	GET  /v1/store/points/{addr}        one point record by content address (404 = miss)
//	PUT  /v1/store/points/{addr}        store one point record (the record names its own key)
//	GET  /v1/store/memo                 the live engine memo cache, snapshotted
//	PUT  /v1/store/memo                 merge a memo snapshot into the live cache
//	GET  /v1/store/studies              stored study fingerprints
//	GET  /v1/store/studies/{fp}         one study manifest record
//	PUT  /v1/store/studies/{fp}         store one study manifest record
//	POST /v1/store/diff                 anti-entropy: diff a peer's point-address set against ours
//	GET  /v1/store/digest               point count + digest of the store's point-key set
//	POST /v1/shard                      compute a slice of a study's design space
//
// Failure semantics mirror the local backend's, mapped onto status codes:
// a missing record is 404 (a clean miss), an unusable upload is 400 with
// store_corrupt or version_mismatch (deterministic — clients don't retry),
// and a missing or degraded store is 503 store_unavailable (transient —
// remote peers retry, then count it toward their degradation threshold).

// maxRecordBytes bounds one uploaded store record (a point record is a few
// KB; a memo snapshot grows with distinct configurations).
const maxRecordBytes = 16 << 20

// buildRevision is the VCS revision stamped into the binary, when the
// toolchain recorded one.
var buildRevision = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return ""
}()

// handleVersion answers the worker/peer handshake: every schema version
// that crosses the wire. Peers refuse to exchange records with a server
// whose versions disagree with their own (store.OpenRemote,
// fabric.Pool.handshake).
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, store.VersionInfo{
		Protocol:      store.ProtocolVersion,
		PointKey:      core.PointKeyVersion,
		StoreRecord:   store.RecordVersion,
		ShardWire:     store.ShardWireVersion,
		MemoSnapshot:  nvsim.SnapshotVersion,
		GoVersion:     runtime.Version(),
		BuildRevision: buildRevision,
	})
}

// storeFor503 returns the attached store, answering 503 store_unavailable
// when there is none or it has degraded to memory-only mode. Degraded is
// deliberate: a degraded store can still answer from memory, but peers
// treating it as healthy would build on state this process can no longer
// persist — better they fail over like the local backend does on a dying
// disk.
func (s *Server) storeFor503(w http.ResponseWriter) (*store.Store, bool) {
	st := s.opts.Store
	switch {
	case st == nil:
		apiError(w, http.StatusServiceUnavailable, codeStoreUnavailable,
			fmt.Errorf("no study store attached (start the server with -store)"))
		return nil, false
	case st.Degraded():
		apiError(w, http.StatusServiceUnavailable, codeStoreUnavailable,
			fmt.Errorf("study store degraded to memory-only mode"))
		return nil, false
	}
	return st, true
}

// handleStorePointGet serves one point record's envelope bytes by content
// address. Registered as GET, which also answers HEAD ("has") for free.
func (s *Server) handleStorePointGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeFor503(w)
	if !ok {
		return
	}
	addr := r.PathValue("addr")
	data, ok := st.ExportPoint(addr)
	if !ok {
		apiError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("no point record at %s", addr))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// handleStorePointPut verifies and stores one uploaded point record. The
// record names its own key (and the key hashes to the address), so the
// path's address is advisory: a mislabeled upload can only collide with
// itself.
func (s *Server) handleStorePointPut(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeFor503(w)
	if !ok {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRecordBytes))
	if err != nil {
		apiError(w, http.StatusBadRequest, codeStoreCorrupt, err)
		return
	}
	if _, err := st.ImportPoint(data); err != nil {
		s.importError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// importError maps the store's typed import failures onto the envelope.
func (s *Server) importError(w http.ResponseWriter, err error) {
	if errors.Is(err, store.ErrUnknownVersion) {
		apiError(w, http.StatusBadRequest, codeVersionMismatch, err)
		return
	}
	apiError(w, http.StatusBadRequest, codeStoreCorrupt, err)
}

// handleMemoGet snapshots the live engine memo cache — the warm state a
// joining worker pulls so overlapping studies start with the fleet's
// accumulated characterizations.
func (s *Server) handleMemoGet(w http.ResponseWriter, _ *http.Request) {
	if _, ok := s.storeFor503(w); !ok {
		return
	}
	if nvsim.MemoLen() == 0 {
		apiError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("memo cache is empty"))
		return
	}
	var buf bytes.Buffer
	if err := nvsim.SnapshotMemo(&buf); err != nil {
		apiError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(buf.Bytes())
}

// handleMemoPut merges an uploaded memo snapshot into the live cache.
// Merge, not replace: entries this process already computed keep their
// live values, so concurrent peers can exchange snapshots in both
// directions without losing work.
func (s *Server) handleMemoPut(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.storeFor503(w); !ok {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRecordBytes))
	if err != nil {
		apiError(w, http.StatusBadRequest, codeStoreCorrupt, err)
		return
	}
	if _, err := nvsim.CheckMemoSnapshot(bytes.NewReader(data)); err != nil {
		apiError(w, http.StatusBadRequest, codeStoreCorrupt, err)
		return
	}
	if _, err := nvsim.RestoreMemo(bytes.NewReader(data)); err != nil {
		apiError(w, http.StatusBadRequest, codeStoreCorrupt, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStoreStudies lists stored study fingerprints — the remote
// backend's manifest index.
func (s *Server) handleStoreStudies(w http.ResponseWriter, _ *http.Request) {
	st, ok := s.storeFor503(w)
	if !ok {
		return
	}
	writeJSON(w, map[string]any{"fingerprints": st.StudyFingerprints()})
}

// handleStoreStudyGet serves one study manifest's envelope bytes.
func (s *Server) handleStoreStudyGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeFor503(w)
	if !ok {
		return
	}
	fp := r.PathValue("fingerprint")
	data, ok := st.ExportStudy(fp)
	if !ok {
		apiError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("no study record %s", fp))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// handleStoreStudyPut verifies and stores one uploaded study manifest.
func (s *Server) handleStoreStudyPut(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeFor503(w)
	if !ok {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRecordBytes))
	if err != nil {
		apiError(w, http.StatusBadRequest, codeStoreCorrupt, err)
		return
	}
	if _, err := st.ImportStudy(data); err != nil {
		s.importError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// maxDiffAddrs bounds one diff request's address list: at 64 hex chars
// per address this caps the body around 300 MB of addresses in theory,
// but the JSON body itself is capped far lower below; the constant guards
// the quadratic-ish set work, not the wire.
const maxDiffAddrs = 1 << 20

// handleStoreDiff answers the anti-entropy protocol: the requester posts
// its full point-address set and learns which of those records this store
// lacks ("missing" — the requester should push them) and which records
// this store holds that the requester doesn't ("extra" — the requester
// should pull them), plus this store's own point count and digest so the
// requester can verify convergence without a second round trip.
func (s *Server) handleStoreDiff(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeFor503(w)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRecordBytes))
	if err != nil {
		apiError(w, http.StatusBadRequest, codeStoreCorrupt, err)
		return
	}
	var req store.DiffRequest
	if err := json.Unmarshal(body, &req); err != nil {
		apiError(w, http.StatusBadRequest, codeStoreCorrupt, err)
		return
	}
	if req.Protocol != store.ProtocolVersion {
		apiError(w, http.StatusBadRequest, codeVersionMismatch,
			fmt.Errorf("diff speaks protocol %q, this store speaks %q", req.Protocol, store.ProtocolVersion))
		return
	}
	if len(req.Addrs) > maxDiffAddrs {
		apiError(w, http.StatusBadRequest, codeStoreCorrupt,
			fmt.Errorf("diff of %d addresses exceeds the %d limit", len(req.Addrs), maxDiffAddrs))
		return
	}
	writeJSON(w, st.Diff(req.Addrs))
}

// handleStoreDigest reports the store's point count and point-key-set
// digest — the cheap convergence probe: two stores with equal digests
// hold identical point sets.
func (s *Server) handleStoreDigest(w http.ResponseWriter, _ *http.Request) {
	st, ok := s.storeFor503(w)
	if !ok {
		return
	}
	count, digest := st.Digest()
	writeJSON(w, map[string]any{"points": count, "digest": digest})
}

// handleShard computes one slice of a study's design space — the worker
// half of the fabric protocol. The request carries the effective sweep
// configuration; this worker rebuilds the study from it and must arrive at
// the coordinator's fingerprint, or the two processes disagree about what
// the work is (409 shard_conflict). Computed points flow through this
// worker's own store/memo (so a warm worker serves its shard without
// touching the engine) and return as one CRC-enveloped payload.
//
// Failed grid points are simply absent from the response: a config the
// engine rejects never reaches the cache, and the coordinator computes the
// point locally to produce the identical failure row.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 2*maxConfigBytes))
	if err != nil {
		apiError(w, http.StatusBadRequest, codeInvalidConfig, err)
		return
	}
	var req fabric.ShardRequest
	if err := json.Unmarshal(body, &req); err != nil {
		apiError(w, http.StatusBadRequest, codeInvalidConfig, err)
		return
	}
	if req.Protocol != store.ProtocolVersion {
		apiError(w, http.StatusBadRequest, codeVersionMismatch,
			fmt.Errorf("shard speaks protocol %q, this worker speaks %q", req.Protocol, store.ProtocolVersion))
		return
	}
	cfg, err := sweep.Parse(bytes.NewReader(req.Config))
	if err != nil {
		apiError(w, http.StatusBadRequest, codeInvalidConfig, err)
		return
	}
	// The worker's own store backs the shard, so repeated shards replay
	// stored points; a storeless worker still needs a cache to collect the
	// results, so it gets a throwaway in-memory one.
	cache := s.opts.Store
	if cache == nil {
		if cache, err = store.Open(""); err != nil {
			apiError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
	}
	cfg.Cache = cache
	study, err := cfg.Study()
	if err != nil {
		apiError(w, http.StatusBadRequest, codeInvalidConfig, err)
		return
	}
	if study.Workers == 0 {
		study.Workers = s.opts.StudyWorkers
	}
	fp, err := study.Fingerprint()
	if err != nil {
		apiError(w, http.StatusUnprocessableEntity, codeInvalidConfig, err)
		return
	}
	if fp != req.Fingerprint {
		apiError(w, http.StatusConflict, codeShardConflict,
			fmt.Errorf("config rebuilds to study %s, coordinator expects %s", fp, req.Fingerprint))
		return
	}
	specs, err := study.Space()
	if err != nil {
		apiError(w, http.StatusUnprocessableEntity, codeInvalidConfig, err)
		return
	}
	for _, i := range req.Indices {
		if i < 0 || i >= len(specs) {
			apiError(w, http.StatusConflict, codeShardConflict,
				fmt.Errorf("shard index %d outside the %d-point design space", i, len(specs)))
			return
		}
	}

	// Shards are studies: they share the sync path's concurrency budget,
	// load shedding, and execution timeout.
	ok, shed := s.acquire(r)
	if shed {
		shedRequest(w, time.Second)
		return
	}
	if !ok {
		return // coordinator gone while queued
	}
	defer func() { <-s.sem }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	ctx := r.Context()
	if s.opts.StudyTimeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, s.opts.StudyTimeout)
		defer cancel()
	}
	if _, err := study.RunPoints(ctx, req.Indices, func(core.PointResult) error {
		if pointDelay > 0 {
			select {
			case <-time.After(pointDelay):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}); err != nil {
		s.failed.Add(1)
		switch {
		case r.Context().Err() != nil: // coordinator gone
		case ctx.Err() != nil:
			apiError(w, http.StatusServiceUnavailable, codeStudyTimeout,
				fmt.Errorf("shard exceeded the %s execution budget", s.opts.StudyTimeout))
		default:
			apiError(w, http.StatusUnprocessableEntity, codeStudyFailed, err)
		}
		return
	}
	// Collect through the cache rather than the emit stream: the cache holds
	// exactly the points that completed (failed configs never get a put), in
	// their canonical stored form.
	pts := make([]store.ShardPoint, 0, len(req.Indices))
	for _, i := range req.Indices {
		key := study.PointKey(specs[i])
		if cp, ok := cache.Get(key); ok {
			pts = append(pts, store.ShardPoint{Index: i, Key: key, Point: cp})
		}
	}
	data, err := store.EncodeShardPoints(pts)
	if err != nil {
		s.failed.Add(1)
		apiError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	s.completed.Add(1)
	s.shardsServed.Add(1)
	s.points.Add(int64(len(pts)))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

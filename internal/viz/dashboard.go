package viz

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"strings"
)

// Static HTML+SVG dashboard generation — the self-contained stand-in for
// the paper's interactive Tableau dashboard. Each Scatter renders as an SVG
// panel with a legend; tables render as HTML tables. No external assets.

// svgPalette colors series in SVG output.
var svgPalette = []string{
	"#2a7de1", "#e1592a", "#2ae17d", "#a12ae1", "#e1c22a",
	"#e12a6f", "#2ac2e1", "#6fe12a", "#815531", "#555555",
}

// SVG renders the scatter as a standalone SVG element.
func (s *Scatter) SVG(width, height int) string {
	if width < 100 {
		width = 100
	}
	if height < 80 {
		height = 80
	}
	const margin = 50
	xLo, xHi, yLo, yHi, ok := s.bounds()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, width, height+30)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`,
		margin, template.HTMLEscapeString(s.Title))
	if !ok {
		b.WriteString(`<text x="50" y="50">no plottable points</text></svg>`)
		return b.String()
	}
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	// Axes.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#999"/>`,
		margin, margin, plotW, plotH)
	axisVal := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s: %.3g .. %.3g</text>`,
		margin, height-margin+16, template.HTMLEscapeString(s.XLabel),
		axisVal(xLo, s.LogX), axisVal(xHi, s.LogX))
	fmt.Fprintf(&b, `<text x="4" y="%d" font-size="11" transform="rotate(-90 12 %d)">%s: %.3g .. %.3g</text>`,
		margin+40, margin+40, template.HTMLEscapeString(s.YLabel),
		axisVal(yLo, s.LogY), axisVal(yHi, s.LogY))
	// Points.
	for si, ser := range s.Series {
		color := svgPalette[si%len(svgPalette)]
		for _, p := range ser.Points {
			x, y := p.X, p.Y
			if s.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if s.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			px := float64(margin) + (x-xLo)/(xHi-xLo)*plotW
			py := float64(margin) + plotH - (y-yLo)/(yHi-yLo)*plotH
			title := ser.Name
			if p.Label != "" {
				title += ": " + p.Label
			}
			if p.Emph {
				// Frontier points: larger, outlined, fully opaque.
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="5.5" fill="%s" stroke="#111" stroke-width="1.5"><title>%s (Pareto frontier)</title></circle>`,
					px, py, color, template.HTMLEscapeString(title))
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" fill-opacity="0.75"><title>%s</title></circle>`,
				px, py, color, template.HTMLEscapeString(title))
		}
	}
	// Legend.
	lx := margin
	ly := height + 8
	for si, ser := range s.Series {
		color := svgPalette[si%len(svgPalette)]
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="4" fill="%s"/>`, lx, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`,
			lx+8, ly+4, template.HTMLEscapeString(ser.Name))
		lx += 12 + 7*len(ser.Name)
		if lx > width-80 && si < len(s.Series)-1 {
			lx = margin
			ly += 14
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// Dashboard is a collection of panels rendered into one HTML page.
type Dashboard struct {
	Title    string
	Scatters []*Scatter
	Tables   []*Table
}

var dashboardTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 24px; }
h1 { font-size: 20px; }
table { border-collapse: collapse; margin: 12px 0; }
th, td { border: 1px solid #ccc; padding: 3px 8px; font-size: 12px; }
th { background: #f0f0f0; }
.panel { display: inline-block; margin: 10px; vertical-align: top; }
caption { font-weight: bold; font-size: 13px; text-align: left; padding: 4px 0; }
</style></head><body>
<h1>{{.Title}}</h1>
{{range .SVGs}}<div class="panel">{{.}}</div>
{{end}}
{{range .HTMLTables}}{{.}}
{{end}}
</body></html>
`))

// WriteHTML renders the dashboard to w.
func (d *Dashboard) WriteHTML(w io.Writer) error {
	var svgs []template.HTML
	for _, s := range d.Scatters {
		svgs = append(svgs, template.HTML(s.SVG(460, 320)))
	}
	var tables []template.HTML
	for _, t := range d.Tables {
		tables = append(tables, template.HTML(tableHTML(t)))
	}
	return dashboardTmpl.Execute(w, struct {
		Title      string
		SVGs       []template.HTML
		HTMLTables []template.HTML
	}{d.Title, svgs, tables})
}

func tableHTML(t *Table) string {
	var b strings.Builder
	b.WriteString("<table><caption>")
	b.WriteString(template.HTMLEscapeString(t.Title))
	b.WriteString("</caption><tr>")
	for _, c := range t.Columns {
		b.WriteString("<th>" + template.HTMLEscapeString(c) + "</th>")
	}
	b.WriteString("</tr>")
	for _, row := range t.Rows {
		b.WriteString("<tr>")
		for _, cell := range row {
			b.WriteString("<td>" + template.HTMLEscapeString(cell) + "</td>")
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</table>")
	return b.String()
}

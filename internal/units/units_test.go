package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{0, "J", "0J"},
		{2.5e-9, "J", "2.5nJ"},
		{1.234e-12, "J", "1.23pJ"},
		{3.2e6, "W", "3.2MW"},
		{1, "s", "1s"},
		{-4.2e-3, "W", "-4.2mW"},
		{42e3, "B/s", "42kB/s"},
	}
	for _, c := range cases {
		if got := SI(c.v, c.unit); got != c.want {
			t.Errorf("SI(%g,%q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestSINonFinite(t *testing.T) {
	if got := SI(math.NaN(), "J"); got != "NaNJ" {
		t.Errorf("SI(NaN) = %q", got)
	}
	if got := SI(math.Inf(1), "J"); got != "+InfJ" {
		t.Errorf("SI(+Inf) = %q", got)
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2 * KiB, "2KiB"},
		{2 * MiB, "2MiB"},
		{16 * MiB, "16MiB"},
		{3 * GiB, "3GiB"},
		{1536, "1.50KiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.n); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestTimeEnergyPowerFormatting(t *testing.T) {
	if got := NSToString(12500); got != "12.5µs" {
		t.Errorf("NSToString(12500) = %q", got)
	}
	if got := PJToString(2500); got != "2.5nJ" {
		t.Errorf("PJToString(2500) = %q", got)
	}
	if got := MWToString(3100); got != "3.1W" {
		t.Errorf("MWToString(3100) = %q", got)
	}
}

func TestMbPerMM2(t *testing.T) {
	// 2 MiB in 1 mm²: 2*2^20*8 bits = 16.777 Mb.
	got := MbPerMM2(2*MiB, 1.0)
	if !ApproxEqual(got, 16.777216, 1e-6) {
		t.Errorf("MbPerMM2 = %v", got)
	}
	if MbPerMM2(MiB, 0) != 0 {
		t.Error("zero area should yield zero density")
	}
	if MbPerMM2(MiB, -1) != 0 {
		t.Error("negative area should yield zero density")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !ApproxEqual(got, 10, 1e-9) {
		t.Errorf("GeoMean([1,100]) = %v", got)
	}
	if got := GeoMean([]float64{4, 0, -2}); !ApproxEqual(got, 4, 1e-9) {
		t.Errorf("GeoMean should ignore non-positive entries, got %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(100, 101, 0.02) {
		t.Error("1% apart should match at 2% tolerance")
	}
	if ApproxEqual(100, 110, 0.02) {
		t.Error("10% apart should not match at 2% tolerance")
	}
	if !ApproxEqual(0, 1e-12, 1e-9) {
		t.Error("tiny absolute differences near zero should match")
	}
}

// Property: clamping is idempotent and always lands inside the interval.
func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(v, lo, hi)
		return c >= lo && c <= hi && Clamp(c, lo, hi) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SI never returns an empty string and always embeds the unit.
func TestSIProperty(t *testing.T) {
	f := func(v float64) bool {
		s := SI(v, "X")
		return len(s) > 0 && s[len(s)-1] == 'X'
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

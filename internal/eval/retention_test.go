package eval

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/traffic"
)

func TestScrubRates(t *testing.T) {
	// SRAM: volatile, no scrub.
	sram := study(t, cell.SRAM, cell.Reference, 1<<20)
	if ScrubWritesPerSec(sram) != 0 {
		t.Error("volatile cells do not scrub")
	}
	// Mature eNVM (1e8 s retention): negligible but non-zero.
	stt := study(t, cell.STT, cell.Optimistic, 16<<20)
	rate := ScrubWritesPerSec(stt)
	if rate <= 0 || rate > 1 {
		t.Errorf("16MB STT scrub rate = %g lines/s, want tiny but positive", rate)
	}
	// Pessimistic RRAM (1e3 s retention): a real rewrite stream.
	rram := study(t, cell.RRAM, cell.Pessimistic, 16<<20)
	if got := ScrubWritesPerSec(rram); got < 100 {
		t.Errorf("pessimistic RRAM scrub = %g lines/s, want hundreds", got)
	}
}

func TestRetentionLimitedLifetime(t *testing.T) {
	rram := study(t, cell.RRAM, cell.Pessimistic, 16<<20)
	capYears := RetentionLimitedLifetimeYears(rram)
	// 1e3 cycles x 1e3 s retention x 0.9 wear-leveling ≈ 10.4 days.
	if capYears > 0.05 {
		t.Errorf("pessimistic RRAM scrub-limited lifetime = %g years, want days", capYears)
	}
	// The evaluation engine enforces the cap even with zero app writes.
	m := MustEvaluate(rram, traffic.Pattern{Name: "idle"}, Options{})
	if math.IsInf(m.LifetimeYears, 1) {
		t.Error("scrubbing must bound the idle lifetime of low-retention cells")
	}
	if m.LifetimeYears > 0.05 {
		t.Errorf("idle lifetime = %g years, want scrub-bounded days", m.LifetimeYears)
	}
	// Mature cells stay effectively unbounded when idle.
	stt := study(t, cell.STT, cell.Optimistic, 16<<20)
	if RetentionLimitedLifetimeYears(stt) < 1e9 {
		t.Error("optimistic STT scrub-limited lifetime should be astronomical")
	}
}

func TestRefreshPowerFoldedIntoTotal(t *testing.T) {
	rram := study(t, cell.RRAM, cell.Pessimistic, 16<<20)
	m := MustEvaluate(rram, traffic.Pattern{Name: "idle"}, Options{})
	if m.RefreshPowerMW <= 0 {
		t.Fatal("low-retention cell should report refresh power")
	}
	if m.TotalPowerMW < m.LeakagePowerMW+m.RefreshPowerMW {
		t.Error("total power must include the refresh stream")
	}
	// Refresh must not meaningfully tax mature technologies.
	stt := study(t, cell.STT, cell.Optimistic, 16<<20)
	ms := MustEvaluate(stt, traffic.Pattern{Name: "idle"}, Options{})
	if ms.RefreshPowerMW > 1e-3 {
		t.Errorf("STT refresh power = %g mW, want negligible", ms.RefreshPowerMW)
	}
}

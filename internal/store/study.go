package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/core"
)

// Study manifests. A manifest makes a completed study addressable by its
// fingerprint (core.Study.Fingerprint): it records the study's name, grid
// size, and the *effective* sweep configuration (request-level overrides
// like ?pareto= already applied), which is everything needed to re-expand
// the identical core.Study later and look its points up in the
// content-addressed point store — without running the engine.
//
// Manifests are what turn the store from a cache into a queryable result
// set: `GET /v1/studies/{fingerprint}` re-renders a stored study
// byte-identically, and the internal/query index enumerates manifests to
// build its in-memory columnar view. They are written after a study
// completes with no failed points (a partially failed study is not fully
// stored, so it is not addressable), live in memory (so a memory-only or
// degraded store still answers queries within one process) and, when a
// directory is configured, on disk under DIR/studies/<fingerprint>.gob in
// the same checksummed envelope as every other store file.

// studyVersion stamps every manifest file; unknown versions are skipped on
// list (they may belong to a newer binary sharing the directory).
const studyVersion = "nvmx-studyrec/v1"

// StudyRecord is the durable description of one completed, fully stored
// study.
type StudyRecord struct {
	Version     string
	Fingerprint string
	Name        string
	// Config is the effective sweep configuration (JSON) the study expanded
	// from, with request-level overrides applied. Re-parsing it yields a
	// study with the same fingerprint; readers verify that before trusting
	// the record.
	Config []byte
	// Points is the study's design-space grid size.
	Points int
	// Exploration is the adaptive run's coverage record; nil for exhaustive
	// studies (gob omits nil pointers, so old manifests decode unchanged).
	// Its Indices list is what lets the query layer replay exactly the
	// evaluated subset instead of demanding the full grid.
	Exploration *core.Exploration
}

// encodeStudyRecord builds the on-disk bytes for one manifest.
func encodeStudyRecord(rec StudyRecord) ([]byte, error) {
	rec.Version = studyVersion
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&rec); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	env := envelope{Version: studyVersion, Sum: crc32.ChecksumIEEE(payload.Bytes()), Payload: payload.Bytes()}
	if err := gob.NewEncoder(&out).Encode(&env); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// decodeStudyRecord verifies and decodes one manifest file's bytes.
// wantFingerprint == "" skips the address check (directory scans check the
// filename instead).
func decodeStudyRecord(data []byte, wantFingerprint string) (StudyRecord, readStatus) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return StudyRecord{}, readCorrupt
	}
	switch env.Version {
	case studyVersion:
		if crc32.ChecksumIEEE(env.Payload) != env.Sum {
			return StudyRecord{}, readCorrupt
		}
		var rec StudyRecord
		if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&rec); err != nil {
			return StudyRecord{}, readCorrupt
		}
		if wantFingerprint != "" && rec.Fingerprint != wantFingerprint {
			return StudyRecord{}, readCorrupt
		}
		return rec, readOK
	case "":
		return StudyRecord{}, readCorrupt
	default:
		// A schema this binary doesn't know: skip, don't destroy.
		return StudyRecord{}, readMissing
	}
}

// SaveStudy records a completed study's manifest, write-through to memory
// and the backend. Saving the same fingerprint again overwrites an
// identical record, so repeated runs are idempotent. Backend errors
// degrade durability, never the caller: the in-memory record still answers
// queries for the rest of the process.
func (s *Store) SaveStudy(rec StudyRecord) error {
	if rec.Fingerprint == "" {
		return fmt.Errorf("store: study record needs a fingerprint")
	}
	rec.Version = studyVersion
	s.studiesMu.Lock()
	s.studiesMem[rec.Fingerprint] = rec
	s.studiesMu.Unlock()
	return s.backend.WriteStudy(rec)
}

// LoadStudy returns the manifest of one stored study by fingerprint:
// memory first, then the backend. Corrupt records are discarded and read
// as misses, like point records.
func (s *Store) LoadStudy(fingerprint string) (StudyRecord, bool) {
	s.studiesMu.Lock()
	rec, ok := s.studiesMem[fingerprint]
	s.studiesMu.Unlock()
	if ok {
		return rec, true
	}
	rec, ok = s.backend.ReadStudy(fingerprint)
	if !ok {
		return StudyRecord{}, false
	}
	s.studiesMu.Lock()
	s.studiesMem[fingerprint] = rec
	s.studiesMu.Unlock()
	return rec, true
}

// ListStudies returns every stored study manifest, sorted by name then
// fingerprint (deterministic across processes). The union of the in-memory
// mirror and the backend is returned, so studies saved by this process
// stay listed even after the store degrades to memory-only mode.
func (s *Store) ListStudies() []StudyRecord {
	for _, fp := range s.backend.StudyFingerprints() {
		s.studiesMu.Lock()
		_, have := s.studiesMem[fp]
		s.studiesMu.Unlock()
		if !have {
			s.LoadStudy(fp) // caches into the mirror on success
		}
	}
	s.studiesMu.Lock()
	out := make([]StudyRecord, 0, len(s.studiesMem))
	for _, rec := range s.studiesMem {
		out = append(out, rec)
	}
	s.studiesMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

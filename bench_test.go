package nvmexplorer

// The benchmark harness: one bench per table and figure in the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each benchmark
// regenerates its experiment and prints the rows/series the paper reports
// once per run, so `go test -bench=. -benchmem` doubles as the full
// reproduction record (captured into bench_output.txt).
//
// A second group of micro-benchmarks times the substrates themselves
// (array characterization, graph kernels, the LLC simulator, fault
// injection, classifier training) so performance regressions in the
// engines are visible.

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/cell"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/nvsim"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/traffic"
)

var printOnce sync.Map

// benchExperiment runs one registered experiment per iteration and prints
// its tables the first time each experiment executes in this process.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *exp.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, done := printOnce.LoadOrStore(id, true); !done && res != nil {
		fmt.Printf("\n### %s — %s\n", id, e.Title)
		for _, t := range res.Tables {
			fmt.Println(t.String())
		}
	}
}

// --- one benchmark per paper table/figure ----------------------------------

func BenchmarkFig1PublicationSurvey(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkTableICellRanges(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkFig3ArrayTentpoles(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4TentpoleValidation(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5DNNArrays(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6DNNPower(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig7IntermittentCrossover(b *testing.B) {
	benchExperiment(b, "fig7")
}
func BenchmarkTableIIPreferredTech(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig8GraphTraffic(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9SpecLLC(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10LLCArrays(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFig11BackGatedFeFET(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12AreaEfficiency(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13MLCFaults(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFig14WriteBuffering(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkTableIIIRelatedWork(b *testing.B)  { benchExperiment(b, "table3") }

// Extension study: SECDED ECC across MLC FeFET cell sizes.
func BenchmarkExtECCProtection(b *testing.B) { benchExperiment(b, "ecc") }

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkCharacterize2MBSTT(b *testing.B) {
	d := cell.MustTentpole(cell.STT, cell.Optimistic)
	for i := 0; i < b.N; i++ {
		if _, err := nvsim.Characterize(nvsim.Config{
			Cell: d, CapacityBytes: 2 << 20, Target: nvsim.OptReadEDP}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizeTargetsCold measures one full engine pass answering
// every optimization target at once, with the memo cache cleared each
// iteration — the evaluate-once/select-per-target win in isolation. Compare
// against 8× BenchmarkCharacterize2MBSTTCold.
func BenchmarkCharacterizeTargetsCold(b *testing.B) {
	d := cell.MustTentpole(cell.STT, cell.Optimistic)
	targets := nvsim.OptTargets()
	for i := 0; i < b.N; i++ {
		nvsim.ResetMemo()
		rs, errs := nvsim.CharacterizeTargets(nvsim.Config{
			Cell: d, CapacityBytes: 2 << 20}, targets)
		for j := range errs {
			if errs[j] != nil {
				b.Fatal(errs[j])
			}
		}
		_ = rs
	}
}

// BenchmarkCharacterize2MBSTTCold is the single-target cold path: memo
// cleared per iteration, so it measures a full enumerate+score+select pass.
func BenchmarkCharacterize2MBSTTCold(b *testing.B) {
	d := cell.MustTentpole(cell.STT, cell.Optimistic)
	for i := 0; i < b.N; i++ {
		nvsim.ResetMemo()
		if _, err := nvsim.Characterize(nvsim.Config{
			Cell: d, CapacityBytes: 2 << 20, Target: nvsim.OptReadEDP}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCharacterizeAll16MB(b *testing.B) {
	d := cell.MustTentpole(cell.FeFET, cell.Optimistic)
	for i := 0; i < b.N; i++ {
		if _, err := nvsim.CharacterizeAll(nvsim.Config{
			Cell: d, CapacityBytes: 16 << 20, Target: nvsim.OptReadLatency}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFSSocialGraph(b *testing.B) {
	g, err := graph.RMAT(graph.DefaultRMAT(14, 16, 7))
	if err != nil {
		b.Fatal(err)
	}
	var s graph.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.BFS(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRank(b *testing.B) {
	g, err := graph.RMAT(graph.DefaultRMAT(12, 16, 7))
	if err != nil {
		b.Fatal(err)
	}
	var s graph.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.PageRank(g, 0.85, 1e-6, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLLCSimulator(b *testing.B) {
	p := cache.Profiles()[2] // mcf
	stream := p.Stream(100_000, 1)
	llc, err := cache.NewLLC(cache.StudyLLCBytes, cache.StudyWays, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc.Reset()
		llc.Run(stream)
	}
}

func BenchmarkFaultInjection(b *testing.B) {
	data := make([]byte, 1<<20)
	in := fault.NewInjector(1)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Inject(data, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassifierTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := nn.ReferenceClassifier(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNNTrafficModel(b *testing.B) {
	acc := traffic.NVDLA()
	net := nn.ALBERTBase()
	for i := 0; i < b.N; i++ {
		traffic.DNNTraffic(acc, &net, 60, 3, traffic.WeightsAndActs)
	}
}

func BenchmarkStudyPipeline(b *testing.B) {
	// Construction (cell lookups, pattern generation) is hoisted out of the
	// timed loop: the benchmark measures Run, not the builder.
	study := NewStudy("bench").
		AddTentpole(STT, Optimistic).
		AddTentpole(FeFET, Optimistic).
		AddCapacity(2 << 20).
		AddTarget(OptReadEDP).
		AddPattern(GenericSweep(1, 10, 0.001, 0.1, 3)...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// gridColdStudy is the planner's showcase shape: a write-buffer × fault
// grid whose 16 points share just 2 unique characterizations, so the plan
// pass characterizes twice and the evaluation pass fans the rest out as
// pure float math.
func gridColdStudy() *Study {
	s := NewStudy("grid-cold-bench").
		AddTentpole(STT, Optimistic).
		AddTentpole(FeFET, Optimistic).
		AddCapacity(2 << 20).
		AddTarget(OptReadEDP).
		AddPattern(GenericSweep(1, 10, 0.001, 0.1, 2)...)
	s.WriteBuffers = []*WriteBufferConfig{
		nil,
		{MaskLatency: true, BufferLatencyNS: 1},
		{TrafficReduction: 0.5},
		{MaskLatency: true, BufferLatencyNS: 1, TrafficReduction: 0.25},
	}
	s.Faults = []*FaultConfig{nil, {Mode: FaultRaw, Seed: 9, ProbeBytes: 256}}
	s.Workers = 1
	return s
}

// BenchmarkStudyGridCold measures a cold multi-axis grid per iteration:
// the memo cache is wiped, so the timing covers the plan pass (unique-
// config dedup + characterization) plus the batched evaluation/emission of
// every grid point.
func BenchmarkStudyGridCold(b *testing.B) {
	study := gridColdStudy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nvsim.ResetMemo()
		b.StartTimer()
		if _, err := study.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nvsim.ResetMemo()
}

// adaptiveBenchStudy is the adaptive planner's benchmark grid: 2 cells ×
// 16 geometric capacities selecting on array read latency/energy, so
// refinement concentrates at small capacities and skips most of the axis.
func adaptiveBenchStudy(adaptive bool) *Study {
	s := NewStudy("adaptive-bench").
		AddTentpole(STT, Optimistic).
		AddTentpole(FeFET, Optimistic).
		AddTarget(OptReadEDP).
		AddPattern(TrafficPattern{Name: "p", ReadsPerSec: 1e6, WritesPerSec: 1e5})
	for i := 0; i < 16; i++ {
		s.AddCapacity(64 << 10 << i)
	}
	s.Pareto = []string{"read_latency_ns", "read_energy_pj"}
	if adaptive {
		s.Mode = ModeAdaptive
		s.Seed = 42
	}
	s.Workers = 1
	return s
}

// BenchmarkAdaptiveSweep measures one cold adaptive study per iteration:
// constraint pre-pass, Pareto-guided refinement rounds, and final assembly.
// Compare against BenchmarkExhaustivePrune (the same grid walked in full)
// for the planner's engine-work saving.
func BenchmarkAdaptiveSweep(b *testing.B) {
	study := adaptiveBenchStudy(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nvsim.ResetMemo()
		b.StartTimer()
		if _, err := study.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nvsim.ResetMemo()
}

// BenchmarkExhaustivePrune measures the same grid walked exhaustively with
// the cheap constraint pre-filter active: an area budget excludes the large
// half of the capacity axis before any engine work, so the timing covers
// the pre-filter plus characterization of only the feasible configs.
func BenchmarkExhaustivePrune(b *testing.B) {
	study := adaptiveBenchStudy(false)
	study.MaxAreaMM2 = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nvsim.ResetMemo()
		b.StartTimer()
		if _, err := study.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nvsim.ResetMemo()
}

// BenchmarkEvaluateBatch measures the zero-alloc analytical hot loop: one
// characterized array against a 9-pattern sweep per iteration.
func BenchmarkEvaluateBatch(b *testing.B) {
	arr, err := nvsim.Characterize(nvsim.Config{
		Cell: cell.MustTentpole(cell.STT, cell.Optimistic), CapacityBytes: 2 << 20,
		Target: nvsim.OptReadEDP})
	if err != nil {
		b.Fatal(err)
	}
	patterns := traffic.GenericSweep(0.1, 10, 0.001, 1, 3)
	opts := eval.Options{WriteBuffer: &eval.WriteBufferConfig{MaskLatency: true, BufferLatencyNS: 1}}
	dst := make([]eval.Metrics, 0, len(patterns))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = eval.EvaluateBatch(arr, patterns, opts, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNDJSONEmit measures the streaming row emitter: one Table II-
// shaped study rendered as NDJSON per iteration through the reused
// RowEncoder (the study service's per-row hot path).
func BenchmarkNDJSONEmit(b *testing.B) {
	res, err := tableIIStudy(nil).Run()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweep.WriteNDJSON(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

// tableIIStudy is the Table II-shaped sweep (the case-study cell set at the
// paper's 2MB working size under mixed traffic) used to measure the
// persistent store: cold vs warm latency for the same configuration.
func tableIIStudy(st *Store) *Study {
	s := NewStudy("warm-store-bench").AddCaseStudyCells().
		AddCapacity(2 << 20).
		AddTarget(OptReadEDP).
		AddPattern(GenericSweep(0.1, 10, 0.001, 1, 3)...)
	if st != nil {
		s.Cache = st
	}
	s.Workers = 1
	return s
}

// BenchmarkTableIISweepColdStore measures the no-reuse path: engine memo
// and store wiped every iteration, so each run characterizes from scratch
// (the denominator of the EXPERIMENTS.md cold-vs-warm record).
func BenchmarkTableIISweepColdStore(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nvsim.ResetMemo()
		st, err := OpenStore("") // memory-only: no disk writes in the timing
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := tableIIStudy(st).Run(); err != nil {
			b.Fatal(err)
		}
	}
	nvsim.ResetMemo()
}

// BenchmarkTableIISweepDisk measures a cold Table II sweep writing through
// a fresh disk-backed store each iteration. With NVMX_BENCH_JOURNAL=1 the
// same run is wrapped in the write-ahead job journal (one job record up
// front, one completion record per grid point, cleanup at the end) — the
// shape every async job takes on a journaled server. Comparing the two
// settings with tools/benchcmp gates the journal's overhead on the hot
// path (the EXPERIMENTS.md budget is <5%).
func BenchmarkTableIISweepDisk(b *testing.B) {
	journal := os.Getenv("NVMX_BENCH_JOURNAL") == "1"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nvsim.ResetMemo()
		st, err := OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		s := tableIIStudy(st)
		b.StartTimer()
		if journal {
			id := fmt.Sprintf("job-%d", i)
			if err := st.JournalJob(store.JobRecord{
				ID: id, Fingerprint: "bench", Name: s.Name, Format: "json",
				Config: []byte(`{"name":"bench"}`)}); err != nil {
				b.Fatal(err)
			}
			_, err = s.RunStream(context.Background(), func(pr PointResult) error {
				st.JournalPoint(id, pr.Spec.Index)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			st.JournalDone(id)
		} else if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nvsim.ResetMemo()
}

// queryBenchConfig is the store-backed query benchmark's study: the case
// study cells at two capacities and two targets under a 16-point traffic
// sweep — 1024 result rows once evaluated, enough for stable sort/filter
// timings.
const queryBenchConfig = `{
  "name": "query-bench",
  "cells": [
    {"technology": "STT", "flavor": "Opt"},
    {"technology": "RRAM", "flavor": "Opt"},
    {"technology": "PCM", "flavor": "Opt"},
    {"technology": "FeFET", "flavor": "Opt"}
  ],
  "capacities_bytes": [2097152, 4194304],
  "opt_targets": ["ReadEDP", "Area"],
  "traffic": {"generic": {"read_gbs_lo": 0.1, "read_gbs_hi": 10,
    "write_gbs_lo": 0.001, "write_gbs_hi": 1, "points": 16}},
  "workers": 1
}`

// queryBenchIndex seeds a store with the benchmark study and builds a warm
// index over it (the one-time cost BenchmarkQueryColdIndex measures).
func queryBenchIndex(b *testing.B, dir string) *query.Index {
	b.Helper()
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := sweep.Parse(strings.NewReader(queryBenchConfig))
	if err != nil {
		b.Fatal(err)
	}
	cfg.Cache = st
	s, err := cfg.Study()
	if err != nil {
		b.Fatal(err)
	}
	fp, err := s.Fingerprint()
	if err != nil {
		b.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		b.Fatal(err)
	}
	if err := st.SaveStudy(store.StudyRecord{Fingerprint: fp, Name: s.Name,
		Config: []byte(queryBenchConfig), Points: len(res.Arrays)}); err != nil {
		b.Fatal(err)
	}
	ix := query.New(st)
	ix.Refresh()
	return ix
}

// BenchmarkQueryWarm measures one filtered, sorted top-k query against a
// warm index — the steady-state cost of answering a design question from
// the store with zero engine work (asserted). This is the query layer's
// regression gate.
func BenchmarkQueryWarm(b *testing.B) {
	nvsim.ResetMemo()
	ix := queryBenchIndex(b, b.TempDir())
	req := query.Request{
		Technology: "RRAM",
		Max:        map[string]float64{"total_power_mw": 1e6},
		Sort:       "total_power_mw",
		Top:        10,
	}
	nvsim.ResetMemo()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ix.Query(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Rows != 10 {
			b.Fatalf("query returned %d rows, want 10", resp.Rows)
		}
	}
	b.StopTimer()
	if h, m := nvsim.MemoStats(); h != 0 || m != 0 {
		b.Fatalf("warm query characterized: memo hits=%d misses=%d", h, m)
	}
	nvsim.ResetMemo()
}

// BenchmarkQueryFrontierWarm measures a frontier-of-union selection over
// every indexed row — the most expensive query shape (O(n²) dominance
// scan), still engine-free.
func BenchmarkQueryFrontierWarm(b *testing.B) {
	nvsim.ResetMemo()
	ix := queryBenchIndex(b, b.TempDir())
	req := query.Request{Frontier: []string{"total_power_mw", "read_latency_ns"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nvsim.ResetMemo()
}

// BenchmarkQueryColdIndex measures index construction from a warm disk
// store across a simulated restart: manifest load, config re-expansion,
// point fetches, and the columnar shred — the one-time cost a process pays
// before queries go warm (the EXPERIMENTS.md cold-vs-warm query record).
func BenchmarkQueryColdIndex(b *testing.B) {
	nvsim.ResetMemo()
	dir := b.TempDir()
	queryBenchIndex(b, dir) // prime the store on disk
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nvsim.ResetMemo()
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		ix := query.New(st)
		ix.Refresh()
		if st := ix.Stats(); st.Studies != 1 {
			b.Fatalf("cold index loaded %d studies", st.Studies)
		}
	}
	b.StopTimer()
	nvsim.ResetMemo()
}

// BenchmarkTableIISweepWarmStore measures a repeated study against a warm
// disk-backed store across a simulated restart: each iteration reopens the
// store with a cold engine and an empty in-memory mirror, so the timing
// covers key hashing, disk reads, and gob decodes — and zero engine
// characterizations (asserted). The ratio to the cold benchmark above is
// the EXPERIMENTS.md cold-vs-warm speedup.
func BenchmarkTableIISweepWarmStore(b *testing.B) {
	b.ReportAllocs()
	nvsim.ResetMemo()
	dir := b.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tableIIStudy(st).Run(); err != nil {
		b.Fatal(err) // prime the store on disk
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nvsim.ResetMemo()
		warm, err := OpenStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := tableIIStudy(warm).Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if hits, misses := nvsim.MemoStats(); hits != 0 || misses != 0 {
			b.Fatalf("warm iteration characterized: memo hits=%d misses=%d", hits, misses)
		}
		b.StartTimer()
	}
	b.StopTimer()
	nvsim.ResetMemo()
}

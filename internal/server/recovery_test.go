package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/nvsim"
	"repro/internal/store"
)

// TestCrashRecoveryResumesJournaledJob is the tentpole's acceptance gate: a
// server killed without any shutdown path (no Close, no memo snapshot, no
// journal cleanup — the moral equivalent of SIGKILL) leaves its async job's
// journal on disk; a fresh server over the same store re-adopts the job
// under the same ID, completes it entirely from stored points (zero engine
// characterizations), and serves bytes identical to the batch CLI.
func TestCrashRecoveryResumesJournaledJob(t *testing.T) {
	nvsim.ResetMemo()
	dir := t.TempDir()
	cfg := testConfig("crash-recovery", "STT", 1<<21)
	want := batchOutput(t, cfg, "json")

	// Server A's worker parks once the final grid point's journal record has
	// landed, so the "kill" happens at a known journal state.
	park := make(chan struct{})
	parked := make(chan struct{})
	var once sync.Once
	testHookJobPoint = func(j *job, completed int) {
		if completed == j.total {
			once.Do(func() { close(parked) })
			<-park
		}
	}
	defer func() {
		once.Do(func() { close(parked) })
		close(park)
	}()
	t.Cleanup(func() { testHookJobPoint = nil })

	nvsim.ResetMemo()
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srvA := New(Options{MaxConcurrentStudies: 2, StudyWorkers: 2,
		JobWorkers: 1, JobQueueDepth: 4, Store: stA})
	tsA := httptest.NewServer(srvA.Handler())
	code, acc := submitAsync(t, tsA, cfg)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	<-parked
	// Every point is journaled; wait for the async cache putter to land the
	// point files too (they flush independently of the journal records).
	deadline := time.Now().Add(30 * time.Second)
	for {
		files, err := filepath.Glob(filepath.Join(dir, "points", "*", "*.gob"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d point files on disk", len(files))
		}
		time.Sleep(2 * time.Millisecond)
	}
	// "SIGKILL": drop the frontend and abandon srvA mid-run. Close() is
	// deliberately not called — the job never settles, no memo snapshot is
	// written, and the journal stays exactly as the crash left it.
	tsA.Close()
	if jobs := stA.IncompleteJobs(); len(jobs) != 1 || jobs[0].ID != acc.JobID || jobs[0].Completed != 2 {
		t.Fatalf("journal after crash: %+v", jobs)
	}

	// Reboot: wipe the engine, bring up a fresh server over the same store.
	testHookJobPoint = nil
	nvsim.ResetMemo()
	srvB, tsB := newStoreServer(t, dir)
	if n := srvB.ResumedJobs(); n != 1 {
		t.Fatalf("ResumedJobs = %d, want 1", n)
	}
	st := waitState(t, tsB, acc.JobID, JobDone)
	if st.State != JobDone {
		t.Fatalf("resumed job finished %s (%s), want done", st.State, st.Error)
	}
	if st.Progress.Completed != 2 || st.Progress.Total != 2 {
		t.Fatalf("resumed progress %d/%d, want 2/2", st.Progress.Completed, st.Progress.Total)
	}

	// The resumed result is byte-identical to the batch CLI, and the engine
	// never characterized anything: every point replayed from the store.
	resp, err := http.Get(tsB.URL + st.Result)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("resumed result: status %d, bytes match: %v", resp.StatusCode, bytes.Equal(got, want))
	}
	if mh, mm := nvsim.MemoStats(); mh != 0 || mm != 0 {
		t.Fatalf("resume characterized: memo hits=%d misses=%d, want 0/0", mh, mm)
	}

	// The finished job's journal is gone: the next boot resumes nothing.
	stC, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if jobs := stC.IncompleteJobs(); len(jobs) != 0 {
		t.Fatalf("journal not cleared after completion: %+v", jobs)
	}
	// /v1/stats reports the resumption.
	var stats Stats
	resp, err = http.Get(tsB.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Async.Resumed != 1 {
		t.Fatalf("stats resumed = %d, want 1", stats.Async.Resumed)
	}
}

// TestGracefulShutdownKeepsJournal pins the counterpart contract: a
// *graceful* Close cancels running jobs but keeps their journals, so a
// SIGTERM'd deployment resumes its interrupted work on the next boot.
func TestGracefulShutdownKeepsJournal(t *testing.T) {
	nvsim.ResetMemo()
	release := blockWorker(t)
	dir := t.TempDir()
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srvA := New(Options{MaxConcurrentStudies: 2, StudyWorkers: 2,
		JobWorkers: 1, JobQueueDepth: 4, Store: stA})
	tsA := httptest.NewServer(srvA.Handler())
	t.Cleanup(release)

	code, acc := submitAsync(t, tsA, testConfig("blocker-sigterm", "STT", 1<<21))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitState(t, tsA, acc.JobID, JobRunning)
	tsA.Close()
	// Begin the graceful shutdown first, and only unpark the worker once the
	// manager is marked closing — otherwise the tiny study could finish
	// normally (journal cleared) before Close gets going.
	closed := make(chan struct{})
	go func() { srvA.Close(); close(closed) }()
	for !srvA.jobs.closing.Load() {
		time.Sleep(time.Millisecond)
	}
	release()
	<-closed

	if jobs := stA.IncompleteJobs(); len(jobs) != 1 || jobs[0].ID != acc.JobID {
		t.Fatalf("journal after graceful shutdown: %+v, want the interrupted job", jobs)
	}

	// Next boot picks it up and finishes it.
	testHookJobRunning = nil
	srvB, tsB := newStoreServer(t, dir)
	if n := srvB.ResumedJobs(); n != 1 {
		t.Fatalf("ResumedJobs = %d, want 1", n)
	}
	if st := waitState(t, tsB, acc.JobID, JobDone); st.State != JobDone {
		t.Fatalf("resumed job finished %s (%s)", st.State, st.Error)
	}
}

// TestJobCancelEvictionRace hammers DELETE against concurrent eviction
// (the maxFinishedJobs prune) and unknown IDs: every response must be a
// clean 404 or the job's status — never a panic or a 500. Run under -race
// in CI.
func TestJobCancelEvictionRace(t *testing.T) {
	nvsim.ResetMemo()
	_, ts := newJobServer(t, 8)

	// An unknown job is a 404, full stop.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/job-999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d, want 404", resp.StatusCode)
	}

	// One real finished job, then concurrent DELETEs of it, of unknown IDs,
	// and of each other.
	code, acc := submitAsync(t, ts, testConfig("race-target", "STT", 1<<21))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitState(t, ts, acc.JobID, JobDone)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := acc.JobID
			if i%2 == 1 {
				id = fmt.Sprintf("job-%d", 1000+i) // unknown
			}
			req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
				t.Errorf("concurrent DELETE %s: status %d", id, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
}

// TestSyncLoadShedding saturates the study semaphore and requires the sync
// path to answer 429 with a Retry-After hint instead of queueing forever.
func TestSyncLoadShedding(t *testing.T) {
	nvsim.ResetMemo()
	release := blockWorker(t)
	srv := New(Options{MaxConcurrentStudies: 1, StudyWorkers: 1,
		JobWorkers: 1, JobQueueDepth: 4, SyncWait: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { release(); ts.Close(); srv.Close() })

	code, blocker := submitAsync(t, ts, testConfig("blocker-shed", "STT", 1<<21))
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit status %d", code)
	}
	waitState(t, ts, blocker.JobID, JobRunning) // the only slot is now held

	resp, err := http.Post(ts.URL+"/v1/studies?format=json", "application/json",
		strings.NewReader(testConfig("shed-victim", "RRAM", 1<<21)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated sync POST: status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if srv.Snapshot().Jobs.Shed == 0 {
		t.Fatal("shed counter did not move")
	}
}

// TestStudyTimeout bounds a sync study's execution budget: a run that
// exceeds Options.StudyTimeout answers 503, not a hung connection.
func TestStudyTimeout(t *testing.T) {
	nvsim.ResetMemo()
	srv := New(Options{MaxConcurrentStudies: 2, StudyWorkers: 2,
		StudyTimeout: time.Nanosecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	resp, err := http.Post(ts.URL+"/v1/studies?format=json", "application/json",
		strings.NewReader(testConfig("budget", "STT", 1<<21)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget study: status %d (%s), want 503", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("execution budget")) {
		t.Fatalf("503 body %s should name the execution budget", body)
	}
}

// brokenFS fails every write, driving a store into degraded mode.
type brokenFS struct{ store.FS }

func (brokenFS) WriteFileAtomic(path string, data []byte) error {
	return errors.New("injected: volume gone")
}
func (brokenFS) Append(path string, data []byte) error {
	return errors.New("injected: volume gone")
}
func (brokenFS) ReadFile(path string) ([]byte, error) {
	return nil, errors.New("injected: volume gone")
}
func (brokenFS) ReadDir(path string) ([]iofs.DirEntry, error) {
	return nil, errors.New("injected: volume gone")
}

// TestHealthzReportsDegradedStore drives the store into memory-only
// fallback and checks the operational surface: healthz flips to "degraded"
// (still 200 — the service is correct, just not durable), /v1/stats carries
// the failure counters, and studies keep completing.
func TestHealthzReportsDegradedStore(t *testing.T) {
	nvsim.ResetMemo()
	st, err := store.OpenFS(t.TempDir(), brokenFS{FS: store.DiskFS})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{MaxConcurrentStudies: 2, StudyWorkers: 2, Store: st})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// Studies succeed even while every disk op fails; each distinct study
	// (fresh points — a repeated one would hit the memory mirror and never
	// touch the dead disk again) feeds the degradation threshold.
	for i := 0; i < 6 && !st.Degraded(); i++ {
		code, body := post(t, ts, testConfig("degraded", "STT", 1<<(21+i)), "json")
		if code != http.StatusOK {
			t.Fatalf("study on a broken volume: status %d: %s", code, body)
		}
	}
	if !st.Degraded() {
		t.Fatal("store never degraded despite a dead volume")
	}

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "degraded" {
		t.Fatalf("healthz: %d %q, want 200 \"degraded\"", resp.StatusCode, health.Status)
	}

	stats := srv.Snapshot()
	if !stats.Store.Degraded || stats.Store.IOErrors == 0 {
		t.Fatalf("stats: degraded=%v io_errors=%d", stats.Store.Degraded, stats.Store.IOErrors)
	}

	// And the service still serves studies from memory.
	if code, _ := post(t, ts, testConfig("degraded", "STT", 1<<21), "json"); code != http.StatusOK {
		t.Fatalf("degraded study: status %d", code)
	}
}

package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
)

// Anti-entropy support: the point-set digest protocol that lets two stores
// discover and repair divergence after a partition or crash, and the
// durable sync records that make every reconciliation pass auditable.
//
// The unit of exchange is the content address (the SHA-256 of a point's
// canonical key — see addr). Two stores that hold the same address hold
// the same point: the address commits to the full key, and every record is
// key-verified on read, so set reconciliation over addresses is set
// reconciliation over results. A reconciliation pass works in three steps:
//
//  1. the initiator lists its addresses (PointAddrs) and POSTs them to the
//     peer's /v1/store/diff, which answers with the peer's view: addresses
//     the initiator has that the peer lacks (Missing) and addresses the
//     peer has that the initiator lacks (Extra);
//  2. the initiator pulls every Extra record (GET /v1/store/points/{addr})
//     and pushes every Missing one (PUT) — both directions ride the
//     CRC-enveloped wire format, so a record mangled in transit is
//     quarantined by the consumer's existing envelope check, never stored;
//  3. the initiator appends a SyncRecord under DIR/sync/ so the pass is
//     visible to `nvmexplorer fsck` and operators can audit when (and how
//     much) two stores last converged.
//
// Convergence is asserted by digest: Digest() hashes the sorted address
// set, so two stores report equal digests exactly when they hold identical
// point-key sets.

// PointAddrs returns the content addresses of every point this store can
// serve — the union of the resident in-memory mirror and the backend's
// durable records — sorted for deterministic digests and diffs.
func (s *Store) PointAddrs() []string {
	set := make(map[string]struct{})
	s.mu.Lock()
	for a := range s.idx {
		set[a] = struct{}{}
	}
	s.mu.Unlock()
	for _, a := range s.backend.PointAddrs() {
		set[a] = struct{}{}
	}
	addrs := make([]string, 0, len(set))
	for a := range set {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	return addrs
}

// Digest summarizes the store's point-key set: the SHA-256 over the sorted
// content addresses. Two stores with equal digests hold identical point
// sets — the anti-entropy convergence check.
func (s *Store) Digest() (count int, digest string) {
	addrs := s.PointAddrs()
	h := sha256.New()
	for _, a := range addrs {
		h.Write([]byte(a))
		h.Write([]byte{'\n'})
	}
	return len(addrs), hex.EncodeToString(h.Sum(nil))
}

// DiffRequest is the POST /v1/store/diff body: the wire-protocol
// generation and the requester's full content-address set.
type DiffRequest struct {
	Protocol string   `json:"protocol"`
	Addrs    []string `json:"addrs"`
}

// DiffResponse is the peer's answer: the requester's addresses the peer
// lacks (Missing — candidates to push), the peer's addresses absent from
// the request (Extra — candidates to pull), and the peer's own point count
// and digest so the requester can verify convergence without a second
// round trip.
type DiffResponse struct {
	Missing []string `json:"missing"`
	Extra   []string `json:"extra"`
	Points  int      `json:"points"`
	Digest  string   `json:"digest"`
}

// Diff computes this store's side of the diff protocol against a remote
// address set: which of theirs this store lacks (their view's "missing" is
// computed by the peer; here we answer as the peer).
func (s *Store) Diff(theirs []string) DiffResponse {
	mine := s.PointAddrs()
	mineSet := make(map[string]struct{}, len(mine))
	for _, a := range mine {
		mineSet[a] = struct{}{}
	}
	theirSet := make(map[string]struct{}, len(theirs))
	resp := DiffResponse{Missing: []string{}, Extra: []string{}}
	for _, a := range theirs {
		theirSet[a] = struct{}{}
		if _, ok := mineSet[a]; !ok {
			resp.Missing = append(resp.Missing, a)
		}
	}
	for _, a := range mine {
		if _, ok := theirSet[a]; !ok {
			resp.Extra = append(resp.Extra, a)
		}
	}
	sort.Strings(resp.Missing)
	h := sha256.New()
	for _, a := range mine {
		h.Write([]byte(a))
		h.Write([]byte{'\n'})
	}
	resp.Points, resp.Digest = len(mine), hex.EncodeToString(h.Sum(nil))
	return resp
}

// syncRecordVersion stamps durable anti-entropy sync records.
const syncRecordVersion = "nvmx-sync/v1"

// SyncRecord is the durable trace of one anti-entropy pass against one
// peer: how many records moved in each direction and when (Unix seconds).
// Records accumulate under DIR/sync/ and are scanned by fsck.
type SyncRecord struct {
	Version string
	Peer    string
	Pulled  int
	Pushed  int
	Unix    int64
}

func (lb *localBackend) syncDir() string { return filepath.Join(lb.dir, "sync") }

// syncPath names one pass's record: timestamp first so a directory listing
// sorts chronologically, peer hash second so concurrent passes against
// different peers never collide.
func (lb *localBackend) syncPath(rec SyncRecord) string {
	sum := sha256.Sum256([]byte(rec.Peer))
	return filepath.Join(lb.syncDir(), fmt.Sprintf("%020d-%s.gob", rec.Unix, hex.EncodeToString(sum[:4])))
}

// RecordSync durably appends one anti-entropy pass record. Local stores
// only — a memory or remote store has no directory to audit — and
// best-effort like every durability write: a failure degrades the audit
// trail, never the reconciliation that already happened.
func (s *Store) RecordSync(rec SyncRecord) error {
	lb := s.local
	if lb == nil || !lb.enabled() {
		return nil
	}
	rec.Version = syncRecordVersion
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&rec); err != nil {
		return err
	}
	var out bytes.Buffer
	env := envelope{Version: syncRecordVersion, Sum: crc32.ChecksumIEEE(payload.Bytes()), Payload: payload.Bytes()}
	if err := gob.NewEncoder(&out).Encode(&env); err != nil {
		return err
	}
	if err := lb.fs.MkdirAll(lb.syncDir()); err != nil {
		lb.h.fail("disk", "mkdir "+lb.syncDir(), err)
		return err
	}
	return lb.writeFileRetry(lb.syncPath(rec), out.Bytes())
}

// decodeSyncRecord verifies one sync record's envelope bytes (shared with
// fsck).
func decodeSyncRecord(data []byte) (SyncRecord, readStatus) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return SyncRecord{}, readCorrupt
	}
	if env.Version != syncRecordVersion {
		return SyncRecord{}, readMissing
	}
	if crc32.ChecksumIEEE(env.Payload) != env.Sum {
		return SyncRecord{}, readCorrupt
	}
	var rec SyncRecord
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&rec); err != nil {
		return SyncRecord{}, readCorrupt
	}
	return rec, readOK
}

// SyncRecords loads every readable anti-entropy record, oldest first.
// Corrupt files are skipped (fsck reports and repairs them).
func (s *Store) SyncRecords() []SyncRecord {
	lb := s.local
	if lb == nil || !lb.enabled() {
		return nil
	}
	ents, err := lb.fs.ReadDir(lb.syncDir())
	if err != nil {
		return nil
	}
	var recs []SyncRecord
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".gob") {
			continue
		}
		data, status := lb.readFileRetry(filepath.Join(lb.syncDir(), ent.Name()))
		if status != readOK {
			continue
		}
		if rec, st := decodeSyncRecord(data); st == readOK {
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Unix < recs[j].Unix })
	return recs
}

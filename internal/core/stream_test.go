package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestRunStreamMatchesRun runs the same study through Run and through
// RunStream (both worker counts) and requires identical Results plus
// in-order, gap-free point emission covering the whole grid.
func TestRunStreamMatchesRun(t *testing.T) {
	want, err := parallelStudy(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		s := parallelStudy(workers)
		var indices []int
		var streamed int
		got, err := s.RunStream(context.Background(), func(pt PointResult) error {
			indices = append(indices, pt.Index)
			streamed += len(pt.Metrics)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want.Arrays, got.Arrays) ||
			!reflect.DeepEqual(want.Metrics, got.Metrics) ||
			!reflect.DeepEqual(want.Skipped, got.Skipped) {
			t.Fatalf("workers=%d: RunStream results diverge from Run", workers)
		}
		grid := len(s.Cells) * len(s.Capacities)
		if len(indices) != grid {
			t.Fatalf("workers=%d: emitted %d points, want %d", workers, len(indices), grid)
		}
		for i, idx := range indices {
			if idx != i {
				t.Fatalf("workers=%d: emission out of order at %d: got index %d", workers, i, idx)
			}
		}
		if streamed != len(want.Metrics) {
			t.Fatalf("workers=%d: streamed %d metrics, want %d", workers, streamed, len(want.Metrics))
		}
	}
}

// TestRunStreamEmitError checks that an error returned by the callback
// aborts the run and propagates unchanged.
func TestRunStreamEmitError(t *testing.T) {
	sentinel := errors.New("stop here")
	for _, workers := range []int{1, 8} {
		calls := 0
		_, err := parallelStudy(workers).RunStream(context.Background(), func(PointResult) error {
			calls++
			if calls == 2 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err=%v, want sentinel", workers, err)
		}
		if calls != 2 {
			t.Fatalf("workers=%d: emit called %d times after error, want 2", workers, calls)
		}
	}
}

// TestRunStreamCancellation checks that a canceled context stops the run
// with a context error at any worker count.
func TestRunStreamCancellation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already canceled before the first point
		_, err := parallelStudy(workers).RunStream(ctx, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
		}
	}
}

// TestRunStreamMidRunCancel cancels from inside the emit callback, which is
// how an HTTP handler reacts to a client disconnect mid-stream.
func TestRunStreamMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	_, err := parallelStudy(4).RunStream(ctx, func(PointResult) error {
		emitted++
		if emitted == 1 {
			cancel()
		}
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

// TestRunStreamValidation mirrors Run's configuration errors.
func TestRunStreamValidation(t *testing.T) {
	s := NewStudy("empty")
	if _, err := s.RunStream(context.Background(), nil); err == nil {
		t.Error("no cells should error")
	}
	s.AddCaseStudyCells()
	if _, err := s.RunStream(context.Background(), nil); err == nil {
		t.Error("no capacities should error")
	}
}

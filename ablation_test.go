package nvmexplorer

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// prints a small comparison table once, quantifying how much a modeling
// ingredient matters:
//
//   - tentpole bounds vs the raw survey corpus (Section III-B's motivation);
//   - the organization optimizer vs a fixed naive floorplan;
//   - bank-level H-tree/wire modeling (density->wire coupling) across
//     capacities;
//   - MLC programming vs SLC at iso-capacity;
//   - SECDED protection overhead vs gained BER headroom.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cell"
	"repro/internal/fault"
	"repro/internal/nvsim"
	"repro/internal/viz"
)

var ablOnce sync.Map

func printAblation(id string, t *viz.Table) {
	if _, done := ablOnce.LoadOrStore(id, true); !done {
		fmt.Printf("\n### ablation: %s\n%s\n", id, t.String())
	}
}

// BenchmarkAblationTentpoleVsSurvey quantifies how well the two tentpole
// cells bound array behaviour versus characterizing every surveyed cell:
// the paper's justification for not modeling "many many cell definitions
// with insufficient data".
func BenchmarkAblationTentpoleVsSurvey(b *testing.B) {
	var tab *viz.Table
	for i := 0; i < b.N; i++ {
		tab = viz.NewTable("tentpole bounds vs full survey (1MB STT arrays)",
			"Source", "MinReadNS", "MaxReadNS", "Designs")
		opt := nvsim.MustCharacterize(nvsim.Config{
			Cell: cell.MustTentpole(cell.STT, cell.Optimistic), CapacityBytes: 1 << 20,
			Target: nvsim.OptReadEDP})
		pess := nvsim.MustCharacterize(nvsim.Config{
			Cell: cell.MustTentpole(cell.STT, cell.Pessimistic), CapacityBytes: 1 << 20,
			Target: nvsim.OptReadEDP})
		tab.MustAddRow("tentpoles", opt.ReadLatencyNS, pess.ReadLatencyNS, 2)

		// Characterize every surveyed STT publication with enough data.
		minR, maxR := 1e18, 0.0
		n := 0
		for _, p := range cell.Survey() {
			if p.Tech != cell.STT || p.AreaF2 == 0 || p.WriteNS == 0 {
				continue
			}
			d := cell.MustTentpole(cell.STT, cell.Optimistic) // electrical fill
			d.Name = p.ID
			d.AreaF2 = p.AreaF2
			if p.NodeNM > 0 {
				d.NodeNM = p.NodeNM
			}
			if p.ReadNS > 0 {
				d.ReadLatencyNS = p.ReadNS
			}
			d.WriteLatencyNS = p.WriteNS
			r, err := nvsim.Characterize(nvsim.Config{Cell: d, CapacityBytes: 1 << 20,
				Target: nvsim.OptReadEDP})
			if err != nil {
				continue
			}
			if r.ReadLatencyNS < minR {
				minR = r.ReadLatencyNS
			}
			if r.ReadLatencyNS > maxR {
				maxR = r.ReadLatencyNS
			}
			n++
		}
		tab.MustAddRow("full survey", minR, maxR, n)
	}
	printAblation("tentpole-vs-survey", tab)
}

// BenchmarkAblationOptimizerVsNaive compares the organization search
// against a fixed single-bank square floorplan — the value of NVSim-style
// internal design-space exploration.
func BenchmarkAblationOptimizerVsNaive(b *testing.B) {
	var tab *viz.Table
	d := cell.MustTentpole(cell.STT, cell.Optimistic)
	for i := 0; i < b.N; i++ {
		tab = viz.NewTable("optimizer vs naive floorplan (8MB STT)",
			"Design", "ReadNS", "ReadPJ", "AreaMM2")
		best := nvsim.MustCharacterize(nvsim.Config{Cell: d, CapacityBytes: 8 << 20,
			Target: nvsim.OptReadEDP})
		naive, err := nvsim.Characterize(nvsim.Config{Cell: d, CapacityBytes: 8 << 20,
			Target: nvsim.OptReadEDP, ForceBanks: 1})
		if err != nil {
			b.Fatal(err)
		}
		tab.MustAddRow("optimized", best.ReadLatencyNS, best.ReadEnergyPJ, best.AreaMM2)
		tab.MustAddRow("single bank", naive.ReadLatencyNS, naive.ReadEnergyPJ, naive.AreaMM2)
		if best.ReadLatencyNS > naive.ReadLatencyNS {
			b.Fatal("optimizer lost to the naive floorplan")
		}
	}
	printAblation("optimizer-vs-naive", tab)
}

// BenchmarkAblationDensityWireCoupling shows the density->wire-length
// coupling: at iso-capacity, the denser cell's latency advantage grows with
// capacity. This is modeling ingredient #1 in DESIGN.md.
func BenchmarkAblationDensityWireCoupling(b *testing.B) {
	var tab *viz.Table
	sram := cell.MustTentpole(cell.SRAM, cell.Reference)
	fefet := cell.MustTentpole(cell.FeFET, cell.Optimistic)
	for i := 0; i < b.N; i++ {
		tab = viz.NewTable("density->wire coupling across capacity",
			"Capacity", "SRAM ReadNS", "FeFET ReadNS", "SRAM/FeFET area ratio")
		for _, capBytes := range []int64{1 << 20, 4 << 20, 16 << 20, 64 << 20} {
			rs := nvsim.MustCharacterize(nvsim.Config{Cell: sram, CapacityBytes: capBytes,
				Target: nvsim.OptReadLatency})
			rf := nvsim.MustCharacterize(nvsim.Config{Cell: fefet, CapacityBytes: capBytes,
				Target: nvsim.OptReadLatency})
			tab.MustAddRow(fmt.Sprintf("%dMiB", capBytes>>20), rs.ReadLatencyNS,
				rf.ReadLatencyNS, rs.AreaMM2/rf.AreaMM2)
		}
	}
	printAblation("density-wire-coupling", tab)
}

// BenchmarkAblationMLCVsSLC quantifies what 2 bits per cell buys and costs
// at iso-capacity.
func BenchmarkAblationMLCVsSLC(b *testing.B) {
	var tab *viz.Table
	slc := cell.MustTentpole(cell.RRAM, cell.Optimistic)
	mlc := cell.MustToMLC(slc, 2)
	for i := 0; i < b.N; i++ {
		tab = viz.NewTable("SLC vs 2-bit MLC RRAM (8MB)",
			"Cell", "Mb/mm2", "ReadNS", "WriteNS", "BER")
		for _, d := range []cell.Definition{slc, mlc} {
			r := nvsim.MustCharacterize(nvsim.Config{Cell: d, CapacityBytes: 8 << 20,
				Target: nvsim.OptReadEDP})
			tab.MustAddRow(d.Name, r.DensityMbPerMM2(), r.ReadLatencyNS,
				r.WriteLatencyNS, fault.Model{Cell: d}.BER())
		}
	}
	printAblation("mlc-vs-slc", tab)
}

// BenchmarkAblationSECDED prices the ECC extension: density overhead vs
// raw-BER headroom gained at the accuracy-relevant 1e-4 residual target.
func BenchmarkAblationSECDED(b *testing.B) {
	var tab *viz.Table
	for i := 0; i < b.N; i++ {
		tab = viz.NewTable("SECDED(72,64) headroom",
			"RawBER", "ResidualBER", "Improvement")
		for _, raw := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2} {
			res := fault.ResidualBER(raw)
			tab.MustAddRow(raw, res, raw/res)
		}
	}
	printAblation("secded-headroom", tab)
}

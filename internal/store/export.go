package store

import (
	"errors"
)

// Byte-level record access: the half of the store the /v1/store/* HTTP API
// is made of. Records cross the wire in exactly their envelope form, so
// the consumer's CRC check covers the network path for free — a torn or
// proxied-and-mangled response is detected corruption, same as a torn
// file.

// Errors ImportPoint and ImportStudy distinguish so the HTTP layer can map
// them onto stable error codes.
var (
	// ErrCorruptRecord: the bytes fail the envelope checks (torn, bit
	// flipped, or the payload disagrees with its address).
	ErrCorruptRecord = errors.New("store: corrupt record")
	// ErrUnknownVersion: a schema this binary doesn't speak.
	ErrUnknownVersion = errors.New("store: unknown record version")
)

// ExportPoint returns the raw envelope bytes of one point record by
// content address: resident entries are re-encoded, anything else comes
// from the backend verbatim.
func (s *Store) ExportPoint(addrHex string) ([]byte, bool) {
	s.mu.Lock()
	key, ok := s.idx[addrHex]
	var cp = s.mem[key]
	s.mu.Unlock()
	if ok {
		if data, err := encodePoint(key, cp); err == nil {
			return data, true
		}
	}
	return s.backend.ExportPoint(addrHex)
}

// HasPoint reports whether the store holds a record at a content address.
func (s *Store) HasPoint(addrHex string) bool {
	s.mu.Lock()
	_, ok := s.idx[addrHex]
	s.mu.Unlock()
	if ok {
		return true
	}
	_, ok = s.backend.ExportPoint(addrHex)
	return ok
}

// ImportPoint verifies one point record's envelope bytes and stores the
// point under its own canonical key, returning that key. The caller does
// not get to choose the address — the record names its key and the key
// hashes to the address, so a mislabeled upload can only ever collide with
// itself.
func (s *Store) ImportPoint(data []byte) (string, error) {
	p, status := decodePoint(data, "")
	switch status {
	case readOK, readLegacy:
	case readMissing:
		return "", ErrUnknownVersion
	default:
		return "", ErrCorruptRecord
	}
	s.Put(p.Key, p.Point)
	return p.Key, nil
}

// ExportStudy returns the raw envelope bytes of one study manifest.
func (s *Store) ExportStudy(fingerprint string) ([]byte, bool) {
	rec, ok := s.LoadStudy(fingerprint)
	if !ok {
		return nil, false
	}
	data, err := encodeStudyRecord(rec)
	if err != nil {
		return nil, false
	}
	return data, true
}

// ImportStudy verifies one manifest's envelope bytes and saves it,
// returning its fingerprint.
func (s *Store) ImportStudy(data []byte) (string, error) {
	rec, status := decodeStudyRecord(data, "")
	switch status {
	case readOK:
	case readMissing:
		return "", ErrUnknownVersion
	default:
		return "", ErrCorruptRecord
	}
	if err := s.SaveStudy(rec); err != nil {
		return rec.Fingerprint, nil // durability is best-effort, same as SaveStudy callers
	}
	return rec.Fingerprint, nil
}

// StudyFingerprints lists every stored study's fingerprint (mirror ∪
// backend), sorted — the /v1/store/studies index body.
func (s *Store) StudyFingerprints() []string {
	recs := s.ListStudies()
	fps := make([]string, len(recs))
	for i, rec := range recs {
		fps[i] = rec.Fingerprint
	}
	return fps
}
